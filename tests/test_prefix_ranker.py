"""Tests for the prefix-bucketed ranking strategy."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.basis import PrefixRanker, SortedRanker
from repro.bits import states_with_weight
from repro.errors import BasisError


class TestAgainstSortedRanker:
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        size=st.integers(min_value=1, max_value=500),
        prefix_bits=st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=50, deadline=None)
    def test_identical_results(self, seed, size, prefix_bits):
        rng = np.random.default_rng(seed)
        states = np.unique(
            rng.integers(0, 1 << 40, size=size, dtype=np.uint64)
        )
        sorted_ranker = SortedRanker(states)
        prefix_ranker = PrefixRanker(states, prefix_bits=prefix_bits)
        queries = states[rng.integers(0, states.size, size=64)]
        assert np.array_equal(
            prefix_ranker.rank(queries), sorted_ranker.rank(queries)
        )

    def test_u1_basis(self):
        states = states_with_weight(20, 10)
        ranker = PrefixRanker(states, prefix_bits=10)
        assert np.array_equal(
            ranker.rank(states), np.arange(states.size, dtype=np.int64)
        )

    def test_missing_state_raises(self):
        ranker = PrefixRanker(np.array([1, 5, 9], dtype=np.uint64))
        with pytest.raises(BasisError):
            ranker.rank(np.array([4], dtype=np.uint64))

    def test_out_of_range_query_raises(self):
        ranker = PrefixRanker(np.array([1, 5, 9], dtype=np.uint64), prefix_bits=4)
        with pytest.raises(BasisError):
            ranker.rank(np.array([1 << 50], dtype=np.uint64))

    def test_empty_basis(self):
        ranker = PrefixRanker(np.empty(0, dtype=np.uint64))
        assert ranker.rank(np.empty(0, dtype=np.uint64)).size == 0
        with pytest.raises(BasisError):
            ranker.rank(np.array([1], dtype=np.uint64))

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            PrefixRanker(np.array([3, 1], dtype=np.uint64))

    def test_prefix_bits_bounds(self):
        with pytest.raises(ValueError):
            PrefixRanker(np.array([1], dtype=np.uint64), prefix_bits=0)

    def test_bucket_count_reasonable(self):
        states = states_with_weight(16, 8)
        ranker = PrefixRanker(states, prefix_bits=8)
        assert 2 <= ranker.n_buckets <= (1 << 8) + 2
        assert ranker.size == states.size
