"""Tests for the predefined Hamiltonians, including known physics."""

import numpy as np
import pytest

import repro
from repro.basis import SpinBasis
from repro.operators.hamiltonians import chain_edges, square_lattice_edges


class TestEdgeBuilders:
    def test_chain_edges_periodic(self):
        assert chain_edges(4) == [(0, 1), (1, 2), (2, 3), (3, 0)]

    def test_chain_edges_open(self):
        assert chain_edges(4, periodic=False) == [(0, 1), (1, 2), (2, 3)]

    def test_chain_edges_next_nearest(self):
        assert chain_edges(5, offset=2) == [
            (0, 2),
            (1, 3),
            (2, 4),
            (3, 0),
            (4, 1),
        ]

    def test_square_edges_count(self):
        # torus: 2 * nx * ny edges
        edges = square_lattice_edges(3, 4)
        assert len(edges) == 2 * 3 * 4

    def test_square_edges_open_count(self):
        edges = square_lattice_edges(3, 4, periodic=False)
        assert len(edges) == 3 * (4 - 1) + 4 * (3 - 1)

    def test_square_no_duplicate_edges_when_width_two(self):
        edges = square_lattice_edges(2, 3)
        assert len(edges) == len({tuple(sorted(e)) for e in edges})

    def test_networkx_graph_compatible(self):
        # Our edges can drive a Heisenberg model built from a networkx graph.
        import networkx as nx

        g = nx.cycle_graph(6)
        h_graph = repro.heisenberg(g.edges())
        h_chain = repro.heisenberg_chain(6)
        assert (h_graph - h_chain).is_zero


class TestKnownPhysics:
    def test_two_site_heisenberg_spectrum(self):
        # Singlet at -3/4 J, triplet at +1/4 J.
        h = repro.heisenberg([(0, 1)])
        op = repro.Operator(h, SpinBasis(2))
        evals = np.sort(np.linalg.eigvalsh(op.to_dense()))
        assert np.allclose(evals, [-0.75, 0.25, 0.25, 0.25])

    @pytest.mark.parametrize(
        "n,e0",
        [
            # Exact PBC Heisenberg chain ground-state energies (total, J=1).
            (4, -2.0),
            (6, -2.8027756377319946),
        ],
    )
    def test_heisenberg_chain_ground_state(self, n, e0):
        basis = SpinBasis(n, hamming_weight=n // 2)
        op = repro.Operator(repro.heisenberg_chain(n), basis)
        assert np.linalg.eigvalsh(op.to_dense())[0] == pytest.approx(e0)

    def test_heisenberg_antiferromagnetic_ground_state_is_singlet(self):
        # The true ground state lives in the Sz=0 sector.
        n = 8
        energies = {}
        for w in range(n + 1):
            op = repro.Operator(
                repro.heisenberg_chain(n), SpinBasis(n, hamming_weight=w)
            )
            energies[w] = np.linalg.eigvalsh(op.to_dense())[0]
        assert min(energies, key=energies.get) == n // 2

    def test_tfim_critical_point_energy(self):
        # TFIM with H = -J sum Sz Sz - h sum Sx; with J=h the model is
        # critical.  Compare against exact free-fermion result for small n:
        # E0 = -(1/2) * sum_k |cos(k/2)| ... easier: compare to dense diag.
        n = 8
        op = repro.Operator(
            repro.transverse_field_ising(n, coupling=4.0, field=2.0),
            SpinBasis(n),
        )
        e0 = np.linalg.eigvalsh(op.to_dense())[0]
        # Exact solution: E0 = -h * sum_k sqrt(1 + g^2 + 2 g cos k) with
        # g = J_pauli/h_pauli; our spin convention maps J_pauli = J/4,
        # h_pauli = h/2 so g = J/(2h) = 1 at this point.
        ks = (np.arange(n) + 0.5) * 2 * np.pi / n
        e_exact = -(2.0 / 2) * np.sum(np.sqrt(2 + 2 * np.cos(ks)))
        assert e0 == pytest.approx(e_exact, rel=1e-10)

    def test_xxz_ising_limit(self):
        # jxy=0 makes the model classical: ground state is the Neel state.
        n = 6
        op = repro.Operator(
            repro.xxz_chain(n, jz=1.0, jxy=0.0), SpinBasis(n, hamming_weight=3)
        )
        e0 = np.linalg.eigvalsh(op.to_dense())[0]
        assert e0 == pytest.approx(-n / 4)

    def test_j1j2_majumdar_ghosh(self):
        # At j2 = j1/2 (Majumdar-Ghosh point) the PBC ground-state energy
        # is exactly -3/8 * j1 * n.
        n = 8
        op = repro.Operator(
            repro.j1j2_chain(n, j1=1.0, j2=0.5), SpinBasis(n, hamming_weight=4)
        )
        e0 = np.linalg.eigvalsh(op.to_dense())[0]
        assert e0 == pytest.approx(-3 * n / 8)

    def test_square_lattice_matches_chain_for_1d(self):
        # a 1 x n "square lattice" with open boundaries is an open chain
        h1 = repro.heisenberg_square(4, 1, periodic=False)
        h2 = repro.heisenberg_chain(4, periodic=False)
        assert (h1 - h2).is_zero


class TestCouplings:
    def test_per_edge_couplings(self):
        h = repro.heisenberg([(0, 1), (1, 2)], coupling=[1.0, 2.0])
        href = repro.heisenberg([(0, 1)]) + 2.0 * repro.heisenberg([(1, 2)])
        assert (h - href).is_zero

    def test_coupling_length_mismatch(self):
        with pytest.raises(ValueError):
            repro.heisenberg([(0, 1)], coupling=[1.0, 2.0])

    def test_all_hermitian(self):
        for expr in [
            repro.heisenberg_chain(6),
            repro.xxz_chain(6, jz=0.3),
            repro.transverse_field_ising(6),
            repro.j1j2_chain(6),
            repro.heisenberg_square(3, 2),
        ]:
            assert expr.is_hermitian()

    def test_all_commute_with_translation(self):
        from repro.operators.matrix import expression_to_dense
        from repro.symmetry import translation

        n = 6
        t = translation(n).permutation
        states = np.arange(1 << n, dtype=np.uint64)
        perm_states = t(states).astype(np.int64)
        u = np.zeros((1 << n, 1 << n))
        u[perm_states, np.arange(1 << n)] = 1.0
        for expr in [
            repro.heisenberg_chain(n),
            repro.xxz_chain(n, jz=0.3),
            repro.transverse_field_ising(n),
            repro.j1j2_chain(n),
        ]:
            h = expression_to_dense(expr, n)
            assert np.allclose(u @ h, h @ u)
