"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.runtime import Cluster, laptop_machine
from repro.symmetry import chain_symmetries


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_cluster() -> Cluster:
    return Cluster(3, laptop_machine(cores=4))


@pytest.fixture
def cluster4() -> Cluster:
    return Cluster(4, laptop_machine(cores=4))


@pytest.fixture
def chain12_basis() -> repro.SymmetricBasis:
    group = chain_symmetries(12, momentum=0, parity=0, inversion=0)
    return repro.SymmetricBasis(group, hamming_weight=6)


@pytest.fixture
def chain12_operator(chain12_basis) -> repro.Operator:
    return repro.Operator(repro.heisenberg_chain(12), chain12_basis)


def random_state_batch(
    rng: np.random.Generator, n_sites: int, size: int = 256
) -> np.ndarray:
    """Uniform random basis states on ``n_sites`` bits."""
    return rng.integers(0, 1 << n_sites, size=size, dtype=np.uint64)
