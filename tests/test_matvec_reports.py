"""Tests pinning the simulated-cost accounting of each matvec variant."""

import numpy as np
import pytest

import repro
from repro.basis import SpinBasis
from repro.distributed import (
    DistributedOperator,
    DistributedVector,
    enumerate_states,
)
from repro.distributed.matvec_common import ELEMENT_BYTES
from repro.runtime import Cluster, laptop_machine


@pytest.fixture(scope="module")
def setup():
    cluster = Cluster(3, laptop_machine(cores=4))
    dbasis, _ = enumerate_states(cluster, SpinBasis(10, hamming_weight=5))
    x = DistributedVector.full_random(dbasis, seed=0)
    return dbasis, x


def run(dbasis, x, method, **options):
    dop = DistributedOperator(
        repro.heisenberg_chain(10), dbasis, method=method, **options
    )
    dop.matvec(x)
    return dop.last_report


class TestNaiveAccounting:
    def test_one_message_per_element(self, setup):
        dbasis, x = setup
        report = run(dbasis, x, "naive", batch_size=32)
        assert report.messages == report.extras["elements"]
        assert report.bytes_sent == report.messages * ELEMENT_BYTES

    def test_ledger_phases(self, setup):
        dbasis, x = setup
        report = run(dbasis, x, "naive")
        assert {"diagonal", "generate", "remote-tasks", "nic"} <= set(
            report.ledger.phases
        )


class TestBatchedAccounting:
    def test_messages_bounded_by_chunk_destination_pairs(self, setup):
        dbasis, x = setup
        batch = 16
        report = run(dbasis, x, "batched", batch_size=batch)
        n = dbasis.n_locales
        max_chunks = sum(
            -(-int(c) // batch) for c in dbasis.counts
        )
        assert report.messages <= max_chunks * n

    def test_far_fewer_messages_than_naive(self, setup):
        dbasis, x = setup
        naive = run(dbasis, x, "naive", batch_size=32)
        batched = run(dbasis, x, "batched", batch_size=32)
        assert batched.messages * 10 < naive.messages
        # same payload volume travels either way
        assert batched.bytes_sent == naive.bytes_sent


class TestOrderingOfVariants:
    def test_simulated_times_ordered(self, setup):
        # naive must be far slower; batched and pc are close at this scale
        # (the pc advantage needs many-core nodes — see bench_ablations).
        dbasis, x = setup
        t = {
            m: run(dbasis, x, m, batch_size=32).elapsed
            for m in ("naive", "batched", "pc")
        }
        assert t["naive"] > 5 * t["batched"]
        assert t["naive"] > 5 * t["pc"]

    def test_elapsed_positive_and_finite(self, setup):
        dbasis, x = setup
        for method in ("naive", "batched", "pc"):
            report = run(dbasis, x, method)
            assert 0 < report.elapsed < 1e6
