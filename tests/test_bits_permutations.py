"""Tests for applying site permutations to batches of basis states."""

import numpy as np
from hypothesis import given, strategies as st

from repro.bits import (
    apply_permutation_to_states,
    bit_mask,
    permutation_masks,
    popcount,
    reverse_bits,
    rotate_left,
)


def _random_perm(draw_data, n):
    perm = list(range(n))
    order = draw_data.draw(st.permutations(perm))
    return np.array(order, dtype=np.int64)


perm_st = st.integers(min_value=1, max_value=16).flatmap(
    lambda n: st.permutations(list(range(n)))
)


class TestPermutationMasks:
    def test_identity_single_mask(self):
        masks = permutation_masks(np.arange(8))
        assert len(masks) == 1
        assert masks[0][1] == 0
        assert int(masks[0][0]) == 0xFF

    def test_rotation_two_masks(self):
        n = 8
        perm = (np.arange(n) + 1) % n
        masks = permutation_masks(perm)
        # one group moves +1, one wraps by -(n-1)
        assert len(masks) == 2

    def test_masks_partition_all_sites(self):
        perm = np.array([2, 0, 1, 3])
        masks = permutation_masks(perm)
        combined = 0
        for mask, _ in masks:
            assert combined & int(mask) == 0  # disjoint
            combined |= int(mask)
        assert combined == 0b1111


class TestApplyPermutation:
    @given(perm_st, st.integers(min_value=0, max_value=(1 << 16) - 1))
    def test_matches_per_bit_definition(self, perm, x):
        n = len(perm)
        x &= (1 << n) - 1
        expected = 0
        for i in range(n):
            if (x >> i) & 1:
                expected |= 1 << perm[i]
        got = apply_permutation_to_states(np.array(perm), np.uint64(x))
        assert int(got) == expected

    @given(perm_st, st.integers(min_value=0, max_value=(1 << 16) - 1))
    def test_preserves_popcount(self, perm, x):
        n = len(perm)
        x = np.uint64(x) & bit_mask(n)
        got = apply_permutation_to_states(np.array(perm), x)
        assert int(popcount(got)) == int(popcount(x))

    @given(perm_st)
    def test_inverse_composition_is_identity(self, perm):
        n = len(perm)
        perm = np.array(perm)
        inv = np.empty_like(perm)
        inv[perm] = np.arange(n)
        states = np.arange(min(1 << n, 512), dtype=np.uint64)
        once = apply_permutation_to_states(perm, states)
        back = apply_permutation_to_states(inv, once)
        assert np.array_equal(back, states)

    def test_translation_matches_rotation(self):
        n = 10
        perm = (np.arange(n) + 1) % n
        states = np.arange(1 << n, dtype=np.uint64)
        assert np.array_equal(
            apply_permutation_to_states(perm, states),
            rotate_left(states, 1, n),
        )

    def test_reflection_matches_bit_reversal(self):
        n = 9
        perm = np.arange(n - 1, -1, -1)
        states = np.arange(1 << n, dtype=np.uint64)
        assert np.array_equal(
            apply_permutation_to_states(perm, states),
            reverse_bits(states, n),
        )

    def test_batch_shape_preserved(self):
        perm = np.array([1, 0, 2])
        states = np.zeros((4, 5), dtype=np.uint64)
        assert apply_permutation_to_states(perm, states).shape == (4, 5)
