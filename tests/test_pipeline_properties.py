"""End-to-end property test of the headline algorithm.

Hypothesis draws a random U(1)-conserving Hermitian Hamiltonian, a random
symmetry sector, and a random cluster shape; the producer-consumer
matrix-vector product on the simulated cluster must agree exactly with the
serial reference operator.  This is the strongest single statement the
test suite makes about the paper's contribution.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

import repro
from repro.basis import SymmetricBasis
from repro.distributed import (
    DistributedOperator,
    DistributedVector,
    enumerate_states,
)
from repro.errors import InvalidSectorError
from repro.runtime import Cluster, laptop_machine
from repro.symmetry import chain_symmetries

coupling_st = st.integers(min_value=-2, max_value=2).map(float)


@st.composite
def u1_hamiltonians(draw, n_sites):
    """A random Hermitian, U(1)-conserving, translation-invariant model."""
    h = repro.Expression()
    # translation-invariant exchange at random ranges keeps every chain
    # symmetry intact, so any sector is valid
    for offset in (1, 2, 3):
        jz = draw(coupling_st)
        jxy = draw(coupling_st)
        for i in range(n_sites):
            j = (i + offset) % n_sites
            h = h + jz * (repro.spin_z(i) * repro.spin_z(j))
            h = h + 0.5 * jxy * (
                repro.spin_plus(i) * repro.spin_minus(j)
                + repro.spin_minus(i) * repro.spin_plus(j)
            )
    return h


@given(
    data=st.data(),
    n_sites=st.sampled_from([8, 10, 12]),
    n_locales=st.integers(min_value=1, max_value=4),
    momentum=st.integers(min_value=0, max_value=11),
    batch_size=st.sampled_from([8, 64, 1024]),
    work_stealing=st.booleans(),
)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_distributed_pc_matvec_equals_serial(
    data, n_sites, n_locales, momentum, batch_size, work_stealing
):
    momentum %= n_sites
    weight = n_sites // 2
    try:
        group = chain_symmetries(
            n_sites, momentum=momentum, parity=None, inversion=None
        )
    except InvalidSectorError:
        return
    serial = SymmetricBasis(group, hamming_weight=weight)
    if serial.dim == 0:
        return
    expression = data.draw(u1_hamiltonians(n_sites))
    if expression.is_zero:
        return

    cluster = Cluster(n_locales, laptop_machine(cores=4))
    template = SymmetricBasis(group, hamming_weight=weight, build=False)
    dbasis, _ = enumerate_states(
        cluster, template, chunks_per_core=2, use_weight_shortcut=True
    )
    assert dbasis.dim == serial.dim

    rng = np.random.default_rng(abs(hash((n_sites, momentum))) % 2**32)
    xs = rng.standard_normal(serial.dim).astype(serial.scalar_dtype)
    if serial.scalar_dtype == np.complex128:
        xs = xs + 1j * rng.standard_normal(serial.dim)

    serial_op = repro.Operator(expression, serial)
    y_ref = serial_op.matvec(xs)

    dop = DistributedOperator(
        expression,
        dbasis,
        batch_size=batch_size,
        work_stealing=work_stealing,
    )
    dx = DistributedVector.from_serial(dbasis, serial, xs)
    dy = dop.matvec(dx)
    np.testing.assert_allclose(dy.to_serial(serial), y_ref, atol=1e-12)
