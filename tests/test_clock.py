"""Tests for cost ledgers and bulk-synchronous phase timing."""

import pytest

from repro.runtime import BSPTimer, CostLedger, SimReport, laptop_machine


class TestCostLedger:
    def test_accumulates(self):
        ledger = CostLedger(2)
        ledger.add("gen", 0, 1.0)
        ledger.add("gen", 0, 2.0)
        ledger.add("gen", 1, 5.0)
        assert ledger.total("gen") == pytest.approx(8.0)
        assert ledger.max_over_locales("gen") == pytest.approx(5.0)

    def test_unknown_phase_max_is_zero(self):
        assert CostLedger(2).max_over_locales("nothing") == 0.0

    def test_per_locale_is_copy(self):
        ledger = CostLedger(2)
        ledger.add("x", 0, 1.0)
        arr = ledger.per_locale("x")
        arr[0] = 99.0
        assert ledger.total("x") == pytest.approx(1.0)

    def test_table_renders(self):
        ledger = CostLedger(2)
        ledger.add("generate", 0, 1.0)
        table = ledger.table()
        assert "generate" in table


class TestSimReport:
    def test_mean_message_bytes(self):
        report = SimReport(messages=4, bytes_sent=4096)
        assert report.mean_message_bytes == 1024

    def test_mean_message_bytes_no_messages(self):
        assert SimReport().mean_message_bytes == 0.0

    def test_merge_phase(self):
        report = SimReport()
        report.merge_phase("a", 1.0)
        report.merge_phase("a", 2.0)
        assert report.phase_elapsed["a"] == pytest.approx(3.0)

    def test_summary_renders(self):
        report = SimReport(elapsed=1.5, messages=3, bytes_sent=300)
        report.merge_phase("phase-x", 1.5)
        text = report.summary()
        assert "phase-x" in text
        assert "1.5" in text


class TestBSPTimer:
    def test_compute_only_phase(self):
        machine = laptop_machine(cores=4)
        timer = BSPTimer(machine, n_locales=2)
        timer.add_compute(0, 1.0)
        timer.add_compute(1, 3.0)
        elapsed = timer.end_phase("work")
        assert elapsed == pytest.approx(3.0)  # max over locales
        assert timer.report.elapsed == pytest.approx(3.0)

    def test_phases_accumulate_sequentially(self):
        machine = laptop_machine(cores=4)
        timer = BSPTimer(machine, n_locales=1)
        timer.add_compute(0, 1.0)
        timer.end_phase("a")
        timer.add_compute(0, 2.0)
        timer.end_phase("b")
        assert timer.report.elapsed == pytest.approx(3.0)
        assert timer.report.phase_elapsed == {
            "a": pytest.approx(1.0),
            "b": pytest.approx(2.0),
        }

    def test_message_charges_both_endpoints(self):
        machine = laptop_machine(cores=4)
        timer = BSPTimer(machine, n_locales=3)
        timer.add_message(0, 1, 1 << 20)
        elapsed = timer.end_phase("comm")
        expected = machine.network.transfer_time(1 << 20)
        assert elapsed == pytest.approx(expected)
        assert timer.report.messages == 1
        assert timer.report.bytes_sent == 1 << 20

    def test_local_message_is_memcpy(self):
        machine = laptop_machine(cores=4)
        timer = BSPTimer(machine, n_locales=2)
        timer.add_message(0, 0, 1 << 20)
        elapsed = timer.end_phase("comm")
        assert elapsed == pytest.approx(machine.memcpy_time(1 << 20))

    def test_in_and_out_times_do_not_add(self):
        # A locale that sends and receives simultaneously is limited by the
        # max of the two directions, not the sum.
        machine = laptop_machine(cores=4)
        timer = BSPTimer(machine, n_locales=2)
        timer.add_message(0, 1, 1 << 20)
        timer.add_message(1, 0, 1 << 20)
        one_way = machine.network.transfer_time(1 << 20)
        assert timer.end_phase("comm") == pytest.approx(one_way)

    def test_phase_state_resets(self):
        machine = laptop_machine(cores=4)
        timer = BSPTimer(machine, n_locales=1)
        timer.add_compute(0, 5.0)
        timer.end_phase("a")
        assert timer.end_phase("b") == 0.0
