"""Tests for cost ledgers and bulk-synchronous phase timing."""

import numpy as np
import pytest

from repro import telemetry
from repro.runtime import BSPTimer, CostLedger, SimReport, laptop_machine
from repro.telemetry import MetricsRegistry, MetricsSnapshot


class TestCostLedger:
    def test_accumulates(self):
        ledger = CostLedger(2)
        ledger.add("gen", 0, 1.0)
        ledger.add("gen", 0, 2.0)
        ledger.add("gen", 1, 5.0)
        assert ledger.total("gen") == pytest.approx(8.0)
        assert ledger.max_over_locales("gen") == pytest.approx(5.0)

    def test_unknown_phase_max_is_zero(self):
        assert CostLedger(2).max_over_locales("nothing") == 0.0

    def test_per_locale_is_copy(self):
        ledger = CostLedger(2)
        ledger.add("x", 0, 1.0)
        arr = ledger.per_locale("x")
        arr[0] = 99.0
        assert ledger.total("x") == pytest.approx(1.0)

    def test_table_renders(self):
        ledger = CostLedger(2)
        ledger.add("generate", 0, 1.0)
        table = ledger.table()
        assert "generate" in table

    def test_per_locale_accounting_across_phases(self):
        ledger = CostLedger(3)
        ledger.add("generate", 0, 1.0)
        ledger.add("generate", 2, 4.0)
        ledger.add("generate", 2, 0.5)
        ledger.add("stall", 1, 0.25)
        assert ledger.phases == ["generate", "stall"]
        np.testing.assert_allclose(
            ledger.per_locale("generate"), [1.0, 0.0, 4.5]
        )
        np.testing.assert_allclose(ledger.per_locale("stall"), [0.0, 0.25, 0.0])
        assert ledger.total("generate") == pytest.approx(5.5)
        assert ledger.max_over_locales("generate") == pytest.approx(4.5)


class TestSimReport:
    def test_mean_message_bytes(self):
        report = SimReport(messages=4, bytes_sent=4096)
        assert report.mean_message_bytes == 1024

    def test_mean_message_bytes_no_messages(self):
        assert SimReport().mean_message_bytes == 0.0

    def test_merge_phase(self):
        report = SimReport()
        report.merge_phase("a", 1.0)
        report.merge_phase("a", 2.0)
        assert report.phase_elapsed["a"] == pytest.approx(3.0)

    def test_summary_renders(self):
        report = SimReport(elapsed=1.5, messages=3, bytes_sent=300)
        report.merge_phase("phase-x", 1.5)
        text = report.summary()
        assert "phase-x" in text
        assert "1.5" in text

    def test_extras_round_trip(self):
        extras = {"stall_time": 0.125, "load_imbalance": 1.4, "n_diag": 85.0}
        report = SimReport(extras=dict(extras))
        report.extras["producers"] = 4.0
        assert report.extras == {**extras, "producers": 4.0}
        # extras never leak into the phase breakdown
        assert report.phase_elapsed == {}

    def test_summary_renders_metrics_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("matvec.bytes", src=0, dst=1).inc(512)
        registry.gauge("enumeration.load_imbalance").set(1.25)
        registry.histogram("matvec.stall_seconds").observe(0.5)
        report = SimReport(elapsed=1.0, metrics=registry.snapshot())
        text = report.summary()
        assert "metrics:" in text
        assert "matvec.bytes{dst=1,src=0}" in text
        assert "enumeration.load_imbalance" in text
        assert "matvec.stall_seconds" in text

    def test_summary_without_metrics_has_no_metrics_block(self):
        assert "metrics:" not in SimReport(elapsed=1.0).summary()

    def test_metrics_snapshot_survives_json_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("convert.bytes", src=1, dst=0).inc(4096)
        report = SimReport(metrics=registry.snapshot())
        restored = MetricsSnapshot.from_json(report.metrics.to_json())
        assert restored == report.metrics
        assert restored.counter_total("convert.bytes") == pytest.approx(4096)


class TestBSPTimer:
    def test_compute_only_phase(self):
        machine = laptop_machine(cores=4)
        timer = BSPTimer(machine, n_locales=2)
        timer.add_compute(0, 1.0)
        timer.add_compute(1, 3.0)
        elapsed = timer.end_phase("work")
        assert elapsed == pytest.approx(3.0)  # max over locales
        assert timer.report.elapsed == pytest.approx(3.0)

    def test_phases_accumulate_sequentially(self):
        machine = laptop_machine(cores=4)
        timer = BSPTimer(machine, n_locales=1)
        timer.add_compute(0, 1.0)
        timer.end_phase("a")
        timer.add_compute(0, 2.0)
        timer.end_phase("b")
        assert timer.report.elapsed == pytest.approx(3.0)
        assert timer.report.phase_elapsed == {
            "a": pytest.approx(1.0),
            "b": pytest.approx(2.0),
        }

    def test_message_charges_both_endpoints(self):
        machine = laptop_machine(cores=4)
        timer = BSPTimer(machine, n_locales=3)
        timer.add_message(0, 1, 1 << 20)
        elapsed = timer.end_phase("comm")
        expected = machine.network.transfer_time(1 << 20)
        assert elapsed == pytest.approx(expected)
        assert timer.report.messages == 1
        assert timer.report.bytes_sent == 1 << 20

    def test_local_message_is_memcpy(self):
        machine = laptop_machine(cores=4)
        timer = BSPTimer(machine, n_locales=2)
        timer.add_message(0, 0, 1 << 20)
        elapsed = timer.end_phase("comm")
        assert elapsed == pytest.approx(machine.memcpy_time(1 << 20))

    def test_in_and_out_times_do_not_add(self):
        # A locale that sends and receives simultaneously is limited by the
        # max of the two directions, not the sum.
        machine = laptop_machine(cores=4)
        timer = BSPTimer(machine, n_locales=2)
        timer.add_message(0, 1, 1 << 20)
        timer.add_message(1, 0, 1 << 20)
        one_way = machine.network.transfer_time(1 << 20)
        assert timer.end_phase("comm") == pytest.approx(one_way)

    def test_phase_state_resets(self):
        machine = laptop_machine(cores=4)
        timer = BSPTimer(machine, n_locales=1)
        timer.add_compute(0, 5.0)
        timer.end_phase("a")
        assert timer.end_phase("b") == 0.0

    def test_feeds_telemetry_when_installed(self):
        machine = laptop_machine(cores=4)
        tele = telemetry.Telemetry.enabled()
        with telemetry.use(tele):
            timer = BSPTimer(machine, n_locales=2, name="convert")
            timer.add_message(0, 1, 1024)
            timer.add_message(1, 0, 2048)
            timer.add_compute(0, 0.5)
            elapsed = timer.end_phase("scatter")
        snapshot = timer.report.metrics
        assert snapshot is not None
        assert snapshot.counter_total("convert.bytes") == pytest.approx(3072)
        assert snapshot.counter_total("convert.messages") == pytest.approx(2)
        assert snapshot.counter_total("convert.bytes") == pytest.approx(
            timer.report.bytes_sent
        )
        # One trace span per busy locale, and the global timeline advanced
        # by the phase's elapsed time.
        assert tele.trace.offset == pytest.approx(elapsed)
        spans = [e for e in tele.trace.events if e["ph"] == "X"]
        assert spans and all(e["name"] == "scatter" for e in spans)

    def test_without_telemetry_report_has_no_snapshot(self):
        machine = laptop_machine(cores=4)
        timer = BSPTimer(machine, n_locales=1)
        timer.add_compute(0, 1.0)
        timer.end_phase("work")
        assert timer.report.metrics is None
