"""The real-parallel ``threads`` backend: exactness, failure, determinism.

Three properties anchor the executor refactor:

1. **Exactness on both backends.** Every matvec variant (naive, batched,
   producer-consumer), for single vectors and ``k``-column blocks, must
   match the serial reference operator to ``1e-12`` whether the protocol
   code is interpreted by the discrete-event simulator or run on real
   threads.
2. **Clear failure, not a hang.** A worker that raises mid-matvec on the
   threads backend must surface as a typed
   :class:`~repro.errors.BackendError` naming the locale, promptly.
3. **Sim determinism across the refactor.** The simulator backend's
   timings are a pure function of the machine model; the checked-in
   ``smoke_pipeline`` baseline (recorded pre-refactor, stddev 0) must be
   reproduced *bit-identically* by the executor-based pipeline.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.basis import SymmetricBasis
from repro.distributed import (
    DistributedOperator,
    DistributedVector,
    enumerate_states,
)
from repro.errors import BackendError
from repro.runtime import Cluster, laptop_machine
from repro.symmetry import chain_symmetries

METHODS = ["naive", "batched", "pc"]
BASELINES = Path(__file__).parent.parent / "benchmarks" / "baselines"


def build(backend, n=12, w=6, n_locales=3, cores=4):
    group = chain_symmetries(n, momentum=0, parity=0, inversion=0)
    serial = SymmetricBasis(group, hamming_weight=w)
    template = SymmetricBasis(group, hamming_weight=w, build=False)
    cluster = Cluster(n_locales, laptop_machine(cores=cores), backend=backend)
    dbasis, _ = enumerate_states(cluster, template, chunks_per_core=3)
    expr = repro.heisenberg_chain(n)
    return serial, repro.Operator(expr, serial), dbasis, expr


class TestExactnessOnBothBackends:
    @pytest.mark.parametrize("backend", ["sim", "threads"])
    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("k", [1, 8])
    def test_matches_serial(self, backend, method, k, rng):
        serial, serial_op, dbasis, expr = build(backend)
        shape = (serial.dim,) if k == 1 else (serial.dim, k)
        x = rng.standard_normal(shape).astype(serial.scalar_dtype)
        if serial.scalar_dtype == np.complex128:
            x = x + 1j * rng.standard_normal(shape)
        y_ref = serial_op.matvec(x)
        dx = DistributedVector.from_serial(dbasis, serial, x)
        dop = DistributedOperator(expr, dbasis, method=method, batch_size=64)
        dy = dop.matvec(dx)
        np.testing.assert_allclose(dy.to_serial(serial), y_ref, atol=1e-12)

    @pytest.mark.parametrize("method", METHODS)
    def test_threads_single_locale(self, method, rng):
        """One worker on the threads backend is the serial shared-memory
        path; it must agree too."""
        serial, serial_op, dbasis, expr = build("threads", n_locales=1)
        x = rng.standard_normal(serial.dim).astype(serial.scalar_dtype)
        y_ref = serial_op.matvec(x)
        dx = DistributedVector.from_serial(dbasis, serial, x)
        dop = DistributedOperator(expr, dbasis, method=method, batch_size=64)
        np.testing.assert_allclose(
            dop.matvec(dx).to_serial(serial), y_ref, atol=1e-12
        )

    @pytest.mark.parametrize("method", ["naive", "batched"])
    def test_threads_report_is_wall_clock_with_model_estimate(
        self, method, rng
    ):
        """Analytic variants on threads report measured wall seconds and
        keep the simulator's estimate alongside in ``model_seconds``."""
        serial, _, dbasis, expr = build("threads")
        dx = DistributedVector.full_random(dbasis, seed=3)
        dop = DistributedOperator(expr, dbasis, method=method, batch_size=64)
        dop.matvec(dx)
        report = dop.last_report
        assert report.elapsed > 0.0
        assert report.extras["model_seconds"] > 0.0

    def test_threads_pc_report_is_wall_clock(self, rng):
        serial, _, dbasis, expr = build("threads")
        dx = DistributedVector.full_random(dbasis, seed=3)
        dop = DistributedOperator(expr, dbasis, method="pc", batch_size=64)
        dop.matvec(dx)
        assert dop.last_report.elapsed > 0.0


class TestSharedMemoryVectors:
    """The process-pool-ready vector backing: named segments, attach by
    name, detach-with-copy."""

    def test_roundtrip_through_named_segments(self, rng):
        serial, _, dbasis, _ = build("threads")
        owner = DistributedVector.zeros_shared(dbasis)
        assert owner.is_shared
        names = owner.shared_names()
        assert len(names) == dbasis.n_locales
        for part in owner.parts:
            part[:] = rng.standard_normal(part.shape)
        view = DistributedVector.attach_shared(dbasis, names, owner.dtype)
        for mine, theirs in zip(owner.parts, view.parts):
            np.testing.assert_array_equal(mine, theirs)
        # Writes through the attached view land in the owner's pages.
        view.parts[0][:] = 42.0
        assert float(owner.parts[0][0]) == 42.0
        view.close_shared(unlink=False)
        owner.close_shared(unlink=True)
        assert not owner.is_shared
        # The detach copy keeps the vector usable after unmapping.
        assert float(owner.parts[0][0]) == 42.0

    def test_plain_vectors_are_not_shared(self):
        serial, _, dbasis, _ = build("sim")
        x = DistributedVector.zeros(dbasis)
        assert not x.is_shared
        assert x.shared_names() == []
        x.close_shared()  # no-op


class TestWorkerFailurePropagation:
    """A raising worker mid-matvec: typed error with the locale, no hang."""

    def test_pc_producer_failure(self, monkeypatch, rng):
        import repro.distributed.matvec_pc as mod

        serial, _, dbasis, expr = build("threads")
        real_produce = mod.produce_chunk

        def exploding(op, basis, locale, start, stop, x_part, plan):
            if locale == 1:
                raise RuntimeError("injected kaboom")
            return real_produce(op, basis, locale, start, stop, x_part, plan)

        monkeypatch.setattr(mod, "produce_chunk", exploding)
        dx = DistributedVector.full_random(dbasis, seed=5)
        dop = DistributedOperator(expr, dbasis, method="pc", batch_size=64)
        t0 = time.perf_counter()
        with pytest.raises(BackendError) as excinfo:
            dop.matvec(dx)
        assert time.perf_counter() - t0 < 10.0, "failure must not hang"
        assert "locale 1" in str(excinfo.value)
        assert excinfo.value.locale == 1

    @pytest.mark.parametrize("method", ["naive", "batched"])
    def test_analytic_variant_failure(self, method, monkeypatch, rng):
        import repro.distributed.matvec_common as common

        module = __import__(
            f"repro.distributed.matvec_{method}", fromlist=["produce_chunk"]
        )
        serial, _, dbasis, expr = build("threads")
        real_produce = common.produce_chunk

        def exploding(op, basis, locale, start, stop, x_part, plan):
            if locale == 1:
                raise RuntimeError("injected kaboom")
            return real_produce(op, basis, locale, start, stop, x_part, plan)

        monkeypatch.setattr(module, "produce_chunk", exploding)
        dx = DistributedVector.full_random(dbasis, seed=5)
        dop = DistributedOperator(expr, dbasis, method=method, batch_size=64)
        with pytest.raises(BackendError) as excinfo:
            dop.matvec(dx)
        assert excinfo.value.locale == 1


class TestResilienceOnThreads:
    """The self-healing pipeline on the real backend: exact results,
    populated fault/recovery metrics, typed escalation."""

    def test_fault_free_resilient_pc_matches_serial(self, rng):
        from repro.resilience import ResilienceConfig

        serial, serial_op, dbasis, expr = build("threads")
        dbasis.cluster.resilience = ResilienceConfig()
        x = rng.standard_normal(serial.dim).astype(serial.scalar_dtype)
        y_ref = serial_op.matvec(x)
        dx = DistributedVector.from_serial(dbasis, serial, x)
        dop = DistributedOperator(expr, dbasis, method="pc", batch_size=64)
        dy = dop.matvec(dx)
        np.testing.assert_allclose(dy.to_serial(serial), y_ref, atol=1e-12)
        assert dop.last_report.extras.get("resilient") == 1.0

    def test_seeded_plan_recovers_on_threads(self, rng):
        """The acceptance scenario: message drops + one worker crash on
        ``backend="threads"`` recovers to within 1e-10 of the fault-free
        answer, with fault/recovery metrics populated."""
        from repro import telemetry
        from repro.resilience import FaultPlan, ResilienceConfig
        from repro.telemetry import Telemetry

        serial, serial_op, dbasis, expr = build("threads")
        x = rng.standard_normal(serial.dim).astype(serial.scalar_dtype)
        y_ref = serial_op.matvec(x)
        dx = DistributedVector.from_serial(dbasis, serial, x)
        plan = FaultPlan(seed=21, drop=0.05, crashes={1: 1e-4})
        tele = Telemetry.enabled()
        with telemetry.use(tele):
            dop = DistributedOperator(
                expr,
                dbasis,
                method="pc",
                batch_size=64,
                faults=plan,
                resilience=ResilienceConfig(matvec_restarts=2),
            )
            dy = dop.matvec(dx)
        np.testing.assert_allclose(dy.to_serial(serial), y_ref, atol=1e-10)
        snap = tele.metrics.snapshot()
        assert snap.counter_total("fault.crashes") >= 1
        recovered = sum(
            snap.counter_total(name)
            for name in (
                "recovery.matvec_restarts",
                "recovery.fallbacks",
                "recovery.worker_restarts",
            )
        )
        assert recovered >= 1

    def test_exhausted_budget_is_typed_fault_on_threads(self, rng):
        from repro.errors import FaultError
        from repro.resilience import FaultPlan, ResilienceConfig

        serial, _, dbasis, expr = build("threads")
        dx = DistributedVector.full_random(dbasis, seed=5)
        dop = DistributedOperator(
            expr,
            dbasis,
            method="pc",
            batch_size=64,
            faults=FaultPlan(seed=3, crashes={0: 1e-6}),
            resilience=ResilienceConfig(
                matvec_restarts=0, fallback_to_batched=False
            ),
        )
        t0 = time.perf_counter()
        with pytest.raises(FaultError):
            dop.matvec(dx)
        assert time.perf_counter() - t0 < 30.0, "escalation must not hang"

    def test_worker_restart_supervision(self):
        """A supervised worker killed by an injected crash restarts with
        its factory and completes the run in-place."""
        from repro.resilience import FaultPlan, ResilienceConfig
        from repro.runtime.executor import ThreadExecutor
        from repro.runtime.events import Pop

        plan = FaultPlan(seed=1, crashes={0: 0.0})
        ex = ThreadExecutor(
            faults=plan,
            resilience=ResilienceConfig(max_worker_restarts=2),
        )
        work = ex.queue(name="work")
        seen = ex.counter(0)

        def body():
            while True:
                item = yield Pop(work)
                if item is None:
                    return
                seen.add(item)

        for item in (1, 2, 3, None):
            work.push(item)
        # locale 0 is scheduled to crash immediately; the factory allows
        # one restart, after which the fresh incarnation drains the queue.
        ex.spawn(body(), name="worker", locale=0, factory=body)
        ex.run()
        assert seen.get() == 6
        assert ex.crashed_locales == {0}


class TestSimDeterminismAcrossRefactor:
    """The executor refactor must not move a single simulated femtosecond."""

    def _pc_elapsed(self):
        group = chain_symmetries(16, momentum=0, parity=0, inversion=0)
        template = SymmetricBasis(group, hamming_weight=8, build=False)
        cluster = Cluster(4, laptop_machine(cores=4))
        dbasis, _ = enumerate_states(
            cluster, template, use_weight_shortcut=True
        )
        dop = DistributedOperator(
            repro.heisenberg_chain(16),
            dbasis,
            method="pc",
            batch_size=256,
            buffer_capacity=64,
            producers_per_locale=3,
            consumers_per_locale=1,
        )
        dop.matvec(DistributedVector.full_random(dbasis, seed=7))
        return dop.last_report.elapsed

    def test_simulated_seconds_match_prerefactor_baseline_exactly(self):
        baseline = json.loads(
            (BASELINES / "smoke_pipeline.json").read_text()
        )["metrics"]["pc.simulated_seconds"]
        assert baseline["stddev"] == 0.0
        # Bit-identical, not allclose: the simulator's arithmetic is a
        # deterministic function of the machine model and event order,
        # and the baseline predates the executor abstraction.
        assert self._pc_elapsed() == baseline["mean"]

    def test_simulated_seconds_repeatable(self):
        assert self._pc_elapsed() == self._pc_elapsed()
