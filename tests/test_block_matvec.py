"""Tests for the block (multi-RHS) matvec engine.

The tentpole contract: ``matvec`` over a ``(dim, k)`` block must agree with
``k`` column-by-column single-vector matvecs to ``<= 1e-12`` — for the
serial operator and all three distributed variants, with symmetry-adapted
bases, under an active :class:`~repro.operators.plan.MatvecPlan`, and
across dtype promotion (a plan recorded with a real ``x`` replayed with a
complex one).  The surrounding machinery is covered too: the linear-time
counting-sort partition, the ``wire_bytes`` traffic model, cached
``ProducedChunk.rows`` reuse, and the block adoption in FTLM and Davidson.
"""

import numpy as np
import pytest

import repro
from repro import telemetry
from repro.basis import SpinBasis, SymmetricBasis
from repro.distributed import (
    DistributedOperator,
    DistributedVector,
    enumerate_states,
)
from repro.distributed.convert import counting_sort_order
from repro.distributed.dist_basis import DistributedBasis
from repro.distributed.matvec_common import ELEMENT_BYTES, wire_bytes
from repro.errors import DistributionError
from repro.linalg import davidson, ftlm_thermal, lanczos
from repro.linalg.spaces import apply_block
from repro.runtime import Cluster, laptop_machine
from repro.symmetry import chain_symmetries

N_SITES = 12


@pytest.fixture
def basis():
    group = chain_symmetries(N_SITES, momentum=0, parity=0, inversion=0)
    return SymmetricBasis(group, hamming_weight=N_SITES // 2)


@pytest.fixture
def expr():
    return repro.heisenberg_chain(N_SITES)


def make_distributed(n_locales):
    group = chain_symmetries(N_SITES, momentum=0, parity=0, inversion=0)
    template = SymmetricBasis(
        group, hamming_weight=N_SITES // 2, build=False
    )
    cluster = Cluster(n_locales, laptop_machine(cores=4))
    dbasis, _ = enumerate_states(cluster, template, chunks_per_core=3)
    return dbasis


def random_block(basis, rng, k, dtype=None):
    dtype = np.dtype(basis.scalar_dtype if dtype is None else dtype)
    block = rng.standard_normal((basis.dim, k))
    if dtype.kind == "c":
        block = block + 1j * rng.standard_normal((basis.dim, k))
    return block.astype(dtype)


class TestCountingSortOrder:
    @pytest.mark.parametrize("n_keys", [1, 2, 3, 16, 64])
    def test_matches_stable_argsort(self, rng, n_keys):
        keys = rng.integers(0, n_keys, size=1000)
        order, starts = counting_sort_order(keys, n_keys)
        np.testing.assert_array_equal(
            order, np.argsort(keys, kind="stable")
        )
        np.testing.assert_array_equal(
            np.diff(starts), np.bincount(keys, minlength=n_keys)
        )

    def test_empty_and_single_bucket(self):
        order, starts = counting_sort_order(np.empty(0, dtype=np.int64), 4)
        assert order.size == 0 and starts[-1] == 0
        # One occupied bucket takes the identity shortcut.
        order, starts = counting_sort_order(np.full(10, 2), 4)
        np.testing.assert_array_equal(order, np.arange(10))
        assert starts[2] == 0 and starts[3] == 10


class TestWireBytes:
    def test_single_vector_is_the_classic_pair(self):
        assert wire_bytes(1, 1) == ELEMENT_BYTES == 16
        assert wire_bytes(100) == 1600

    def test_block_amortizes_the_key_bytes(self):
        n = 1000
        for k in (2, 4, 8):
            assert wire_bytes(n, k) < k * wire_bytes(n, 1)
            assert wire_bytes(n, k) == n * (8 + 8 * k)


class TestSerialBlock:
    @pytest.mark.parametrize("k", [1, 3, 8])
    def test_block_matches_looped(self, basis, expr, rng, k):
        op = repro.Operator(expr, basis, plan=True)
        block = random_block(basis, rng, k)
        looped = np.stack(
            [op.matvec(block[:, j]) for j in range(k)], axis=1
        )
        cold = op.matvec(block)
        warm = op.matvec(block)  # replayed from the plan
        np.testing.assert_allclose(cold, looped, atol=1e-12)
        np.testing.assert_allclose(warm, looped, atol=1e-12)

    def test_block_on_plain_basis(self, rng):
        basis = SpinBasis(8, hamming_weight=4)
        op = repro.Operator(repro.heisenberg_chain(8), basis)
        block = random_block(basis, rng, 4)
        looped = np.stack(
            [op.matvec(block[:, j]) for j in range(4)], axis=1
        )
        np.testing.assert_allclose(op.matvec(block), looped, atol=1e-12)

    def test_plan_recorded_real_replayed_complex(self, basis, expr, rng):
        op = repro.Operator(expr, basis, plan=True)
        op.matvec(random_block(basis, rng, 1)[:, 0])  # record with real x
        xc = random_block(basis, rng, 1, dtype=np.complex128)[:, 0]
        yc = op.matvec(xc)
        assert yc.dtype == np.complex128
        reference = repro.Operator(expr, basis, plan=False).matvec(xc)
        np.testing.assert_allclose(yc, reference, atol=1e-12)
        bc = random_block(basis, rng, 3, dtype=np.complex128)
        yb = op.matvec(bc)
        assert yb.dtype == np.complex128
        for j in range(3):
            np.testing.assert_allclose(
                yb[:, j],
                repro.Operator(expr, basis, plan=False).matvec(bc[:, j]),
                atol=1e-12,
            )

    def test_shape_validation(self, basis, expr):
        op = repro.Operator(expr, basis)
        with pytest.raises(ValueError):
            op.matvec(np.zeros(basis.dim + 1))
        with pytest.raises(ValueError):
            op.matvec(np.zeros((basis.dim, 2, 2)))

    def test_matmul_and_linear_operator_accept_blocks(
        self, basis, expr, rng
    ):
        op = repro.Operator(expr, basis)
        block = random_block(basis, rng, 2)
        np.testing.assert_allclose(
            op @ block, op.matvec(block), atol=1e-12
        )
        np.testing.assert_allclose(
            op.as_linear_operator() @ block, op.matvec(block), atol=1e-12
        )

    def test_block_width_telemetry(self, basis, expr, rng):
        op = repro.Operator(expr, basis)
        tele = telemetry.Telemetry.enabled(trace=False)
        with telemetry.use(tele):
            op.matvec(random_block(basis, rng, 5))
        assert tele.metrics.gauge("matvec.block_width").value == 5.0
        per_column = tele.metrics.histogram("kernel.matvec_seconds_per_column")
        total = tele.metrics.histogram("kernel.matvec_seconds")
        assert per_column.count == 1
        assert per_column.total == pytest.approx(total.total / 5)


class TestDistributedBlock:
    @pytest.mark.parametrize("method", ["naive", "batched", "pc"])
    @pytest.mark.parametrize("n_locales", [1, 3])
    @pytest.mark.parametrize("k", [1, 3, 8])
    def test_block_matches_looped(
        self, basis, expr, rng, method, n_locales, k
    ):
        dbasis = make_distributed(n_locales)
        dop = DistributedOperator(expr, dbasis, method=method)
        block = random_block(basis, rng, k)
        # Looped singles populate the plan; the block then replays it.
        looped = np.stack(
            [
                dop.matvec(
                    DistributedVector.from_serial(
                        dbasis, basis, block[:, j]
                    )
                ).to_serial(basis)
                for j in range(k)
            ],
            axis=1,
        )
        dx = DistributedVector.from_serial(dbasis, basis, block)
        assert dx.columns == k
        warm = dop.matvec(dx)
        np.testing.assert_allclose(
            warm.to_serial(basis), looped, atol=1e-12
        )
        assert warm.columns == k
        assert dop.last_report.extras["block_width"] == float(k)
        # A cold block pass (fresh plan) must agree too.
        dop.invalidate_plan()
        cold = dop.matvec(DistributedVector.from_serial(dbasis, basis, block))
        np.testing.assert_allclose(
            cold.to_serial(basis), looped, atol=1e-12
        )

    @pytest.mark.parametrize("method", ["naive", "batched", "pc"])
    def test_plan_recorded_real_replayed_complex(
        self, basis, expr, rng, method
    ):
        dbasis = make_distributed(3)
        dop = DistributedOperator(expr, dbasis, method=method)
        x = random_block(basis, rng, 1)[:, 0]
        dop.matvec(DistributedVector.from_serial(dbasis, basis, x))
        serial = repro.Operator(expr, basis, plan=False)
        xc = random_block(basis, rng, 1, dtype=np.complex128)[:, 0]
        yc = dop.matvec(DistributedVector.from_serial(dbasis, basis, xc))
        assert yc.dtype == np.complex128
        np.testing.assert_allclose(
            yc.to_serial(basis), serial.matvec(xc), atol=1e-12
        )
        bc = random_block(basis, rng, 3, dtype=np.complex128)
        yb = dop.matvec(DistributedVector.from_serial(dbasis, basis, bc))
        assert yb.dtype == np.complex128
        for j in range(3):
            np.testing.assert_allclose(
                yb.to_serial(basis)[:, j],
                serial.matvec(bc[:, j]),
                atol=1e-12,
            )

    def test_block_simulated_bytes_beat_singles(self, basis, expr, rng):
        dbasis = make_distributed(3)
        k = 8
        block = random_block(basis, rng, k)
        dop = DistributedOperator(expr, dbasis, method="batched")
        singles_bytes = 0
        for j in range(k):
            dop.matvec(
                DistributedVector.from_serial(dbasis, basis, block[:, j])
            )
            singles_bytes += dop.last_report.bytes_sent
        dop.matvec(DistributedVector.from_serial(dbasis, basis, block))
        block_bytes = dop.last_report.bytes_sent
        assert block_bytes < singles_bytes
        assert dop.last_report.extras["seconds_per_column"] * k == (
            pytest.approx(dop.last_report.elapsed)
        )

    def test_consumer_rows_cached_across_matvecs(self, basis, expr, rng):
        """Warm matvecs must not re-run stateToIndex: ProducedChunk.rows
        holds the ranked indices after the first (cold) pass."""
        dbasis = make_distributed(3)
        dop = DistributedOperator(expr, dbasis, method="batched")
        dop.matvec(
            DistributedVector.from_serial(
                dbasis, basis, random_block(basis, rng, 1)[:, 0]
            )
        )
        calls = {"n": 0}
        original = DistributedBasis.index_local

        def counting(self, locale, betas):
            calls["n"] += 1
            return original(self, locale, betas)

        DistributedBasis.index_local = counting
        try:
            for chunk in dop.plan._entries.values():
                assert chunk.rows is not None
                assert np.all(chunk.rows >= 0)  # filled by the cold pass
            dop.matvec(
                DistributedVector.from_serial(
                    dbasis, basis, random_block(basis, rng, 3)
                )
            )
        finally:
            DistributedBasis.index_local = original
        assert calls["n"] == 0

    def test_mismatched_output_width_rejected(self, basis, expr, rng):
        dbasis = make_distributed(3)
        dop = DistributedOperator(expr, dbasis, method="batched")
        dx = DistributedVector.from_serial(
            dbasis, basis, random_block(basis, rng, 3)
        )
        y = DistributedVector.zeros(dbasis, columns=2)
        with pytest.raises(DistributionError):
            dop.matvec(dx, y)


class TestDistributedVectorBlocks:
    def test_serial_roundtrip(self, basis, rng):
        dbasis = make_distributed(3)
        block = random_block(basis, rng, 4)
        dv = DistributedVector.from_serial(dbasis, basis, block)
        assert dv.columns == 4 and dv.n_columns == 4
        np.testing.assert_array_equal(dv.to_serial(basis), block)

    def test_constructors(self):
        dbasis = make_distributed(3)
        z = DistributedVector.zeros(dbasis, columns=3)
        assert z.columns == 3
        assert all(p.shape == (int(c), 3) for p, c in zip(z.parts, dbasis.counts))
        r = DistributedVector.full_random(dbasis, seed=7, columns=2)
        assert r.columns == 2
        single = DistributedVector.zeros(dbasis)
        assert single.columns is None and single.n_columns == 1

    def test_inconsistent_parts_rejected(self):
        dbasis = make_distributed(3)
        parts = [
            np.zeros((int(c), 2)) for c in dbasis.counts
        ]
        parts[1] = np.zeros((int(dbasis.counts[1]), 3))
        with pytest.raises(DistributionError):
            DistributedVector(dbasis, parts)


class TestApplyBlock:
    def test_block_capable_operator_called_once(self, basis, expr, rng):
        calls = {"n": 0}
        op = repro.Operator(expr, basis)

        def mv(x):
            calls["n"] += 1
            return op.matvec(x)

        block = random_block(basis, rng, 4)
        out = apply_block(mv, block)
        assert calls["n"] == 1
        looped = np.stack(
            [op.matvec(block[:, j]) for j in range(4)], axis=1
        )
        np.testing.assert_allclose(out, looped, atol=1e-12)

    def test_strict_1d_callable_falls_back(self, rng):
        mat = rng.standard_normal((20, 20))
        mat = mat + mat.T

        def strict(x):
            if np.asarray(x).ndim != 1:
                raise ValueError("1-D only")
            return mat @ x

        block = rng.standard_normal((20, 3))
        np.testing.assert_allclose(
            apply_block(strict, block), mat @ block, atol=1e-12
        )

    def test_wrong_shape_result_falls_back(self, rng):
        # A callable that "succeeds" on 2-D input but returns the wrong
        # shape (e.g. ravels) must be driven column by column instead.
        mat = np.diag(np.arange(1.0, 6.0))
        looped = {"n": 0}

        def sloppy(x):
            x = np.asarray(x)
            if x.ndim == 2:
                return (mat @ x).ravel()
            looped["n"] += 1
            return mat @ x

        block = rng.standard_normal((5, 2))
        np.testing.assert_allclose(
            apply_block(sloppy, block), mat @ block, atol=1e-12
        )
        assert looped["n"] == 2


class TestBlockAdoption:
    def test_ftlm_blocked_matches_sequential(self, basis, expr):
        op = repro.Operator(expr, basis)
        temperatures = np.array([0.5, 1.0, 2.0])
        sequential = ftlm_thermal(
            op, np.zeros(basis.dim), temperatures,
            krylov_dim=20, n_samples=6, seed=3, block_size=1,
        )
        blocked = ftlm_thermal(
            op, np.zeros(basis.dim), temperatures,
            krylov_dim=20, n_samples=6, seed=3, block_size=4,
        )
        np.testing.assert_allclose(
            blocked.energy, sequential.energy, rtol=1e-8
        )
        np.testing.assert_allclose(
            blocked.specific_heat, sequential.specific_heat, rtol=1e-6,
            atol=1e-10,
        )

    def test_davidson_rides_block_matvec(self, basis, expr, rng):
        op = repro.Operator(expr, basis)
        result = davidson(op, op.diagonal().real, k=2, tol=1e-9, seed=1)
        assert result.converged
        reference = lanczos(
            op, rng.standard_normal(basis.dim), k=2, tol=1e-10
        )
        np.testing.assert_allclose(
            result.eigenvalues, reference.eigenvalues, atol=1e-7
        )

    def test_lanczos_single_vector_path_unchanged(self, basis, expr, rng):
        op = repro.Operator(expr, basis)
        v0 = rng.standard_normal(basis.dim)
        res = lanczos(op, v0, k=1, tol=1e-12)
        dense = np.linalg.eigvalsh(op.to_dense())
        np.testing.assert_allclose(
            res.eigenvalues[0], dense[0], atol=1e-9
        )
