"""Tests for the declarative JSON input-file interface."""

import json

import numpy as np
import pytest

import repro
from repro.basis import SpinBasis, SymmetricBasis
from repro.config import load_simulation, run_simulation
from repro.errors import ReproError


BASE_SPEC = {
    "n_sites": 12,
    "hamiltonian": {"model": "heisenberg_chain"},
    "basis": {"hamming_weight": 6, "momentum": 0, "parity": 0, "inversion": 0},
    "solver": {"k": 1, "tol": 1e-10},
}


class TestLoading:
    def test_from_dict(self):
        spec = load_simulation(BASE_SPEC)
        assert spec.n_sites == 12
        assert isinstance(spec.basis, SymmetricBasis)
        assert not spec.distributed

    def test_from_json_string(self):
        spec = load_simulation(json.dumps(BASE_SPEC))
        assert spec.n_sites == 12

    def test_from_file(self, tmp_path):
        path = tmp_path / "input.json"
        path.write_text(json.dumps(BASE_SPEC))
        spec = load_simulation(path)
        assert spec.n_sites == 12

    def test_plain_basis_without_symmetries(self):
        spec = load_simulation(
            {
                "n_sites": 8,
                "hamiltonian": {"model": "transverse_field_ising", "field": 0.5},
                "basis": {},
            }
        )
        assert isinstance(spec.basis, SpinBasis)
        assert spec.basis.hamming_weight is None

    def test_graph_model(self):
        spec = load_simulation(
            {
                "n_sites": 4,
                "hamiltonian": {
                    "model": "heisenberg_graph",
                    "edges": [[0, 1], [1, 2], [2, 3]],
                },
                "basis": {"hamming_weight": 2},
            }
        )
        ref = repro.heisenberg([(0, 1), (1, 2), (2, 3)])
        assert spec.expression.isclose(ref)

    def test_missing_n_sites(self):
        with pytest.raises(ReproError):
            load_simulation({"hamiltonian": {"model": "heisenberg_chain"}})

    def test_unknown_model(self):
        with pytest.raises(ReproError):
            load_simulation({"n_sites": 4, "hamiltonian": {"model": "hubbard"}})

    def test_unknown_model_parameter(self):
        with pytest.raises(ReproError):
            load_simulation(
                {
                    "n_sites": 4,
                    "hamiltonian": {"model": "heisenberg_chain", "tilt": 3},
                }
            )

    def test_missing_model_key(self):
        with pytest.raises(ReproError):
            load_simulation({"n_sites": 4, "hamiltonian": {"coupling": 1.0}})


class TestRunning:
    def test_serial_run_matches_direct_solve(self):
        result = run_simulation(load_simulation(BASE_SPEC))
        group = repro.chain_symmetries(12, momentum=0, parity=0, inversion=0)
        basis = SymmetricBasis(group, hamming_weight=6)
        op = repro.Operator(repro.heisenberg_chain(12), basis)
        e_ref = np.linalg.eigvalsh(op.to_dense())[0]
        assert result["converged"]
        assert result["dimension"] == basis.dim
        assert result["eigenvalues"][0] == pytest.approx(e_ref, abs=1e-8)

    def test_distributed_run(self):
        spec_dict = dict(BASE_SPEC)
        spec_dict["cluster"] = {"n_locales": 2, "machine": "laptop", "cores": 4}
        result = run_simulation(load_simulation(spec_dict))
        serial = run_simulation(load_simulation(BASE_SPEC))
        assert result["eigenvalues"][0] == pytest.approx(
            serial["eigenvalues"][0], abs=1e-8
        )
        assert result["n_locales"] == 2
        assert result["simulated_seconds"] > 0

    def test_result_is_json_serializable(self):
        result = run_simulation(load_simulation(BASE_SPEC))
        json.dumps(result)  # must not raise

    def test_xxz_model_runs(self):
        result = run_simulation(
            load_simulation(
                {
                    "n_sites": 8,
                    "hamiltonian": {"model": "xxz_chain", "jz": 0.5},
                    "basis": {"hamming_weight": 4},
                    "solver": {"k": 2},
                }
            )
        )
        assert len(result["eigenvalues"]) == 2

    def test_square_lattice_model(self):
        result = run_simulation(
            load_simulation(
                {
                    "n_sites": 8,
                    "hamiltonian": {
                        "model": "heisenberg_square",
                        "nx": 4,
                        "ny": 2,
                    },
                    "basis": {"hamming_weight": 4},
                }
            )
        )
        assert result["converged"]

    def test_kagome_model(self):
        spec = load_simulation(
            {
                "n_sites": 12,
                "hamiltonian": {"model": "heisenberg_kagome12"},
                "basis": {"hamming_weight": 6},
            }
        )
        result = run_simulation(spec)
        # kagome-12 reference: E0/site = -0.45374
        assert result["eigenvalues"][0] / 12 == pytest.approx(-0.45374, abs=1e-4)

    def test_lattice_geometry_mismatch(self):
        with pytest.raises(ReproError):
            load_simulation(
                {
                    "n_sites": 9,
                    "hamiltonian": {
                        "model": "heisenberg_square",
                        "nx": 4,
                        "ny": 2,
                    },
                }
            )

    def test_kagome_requires_12_sites(self):
        with pytest.raises(ReproError):
            load_simulation(
                {
                    "n_sites": 10,
                    "hamiltonian": {"model": "heisenberg_kagome12"},
                }
            )

    def test_snellius_cluster_default(self):
        spec_dict = dict(BASE_SPEC)
        spec_dict["cluster"] = {"n_locales": 2}
        result = run_simulation(load_simulation(spec_dict))
        assert result["converged"]


class TestResilienceKnobs:
    """Round-trips for the threads-backend supervision knobs
    (``watchdog_timeout`` / ``max_worker_restarts``) through
    ``ResilienceConfig`` configs, the cluster section, and the CLI."""

    def test_resilience_config_round_trip(self):
        from repro.resilience import ResilienceConfig

        cfg = ResilienceConfig(watchdog_timeout=7.5, max_worker_restarts=5)
        assert cfg.to_config() == {
            "watchdog_timeout": 7.5,
            "max_worker_restarts": 5,
        }
        clone = ResilienceConfig.from_config(cfg.to_config())
        assert clone.watchdog_timeout == 7.5
        assert clone.max_worker_restarts == 5
        assert clone.to_config() == cfg.to_config()

    def test_default_knobs_omitted_from_config(self):
        from repro.resilience import ResilienceConfig

        assert "watchdog_timeout" not in ResilienceConfig().to_config()
        assert "max_worker_restarts" not in ResilienceConfig().to_config()

    def test_knob_validation(self):
        from repro.resilience import ResilienceConfig

        with pytest.raises(ValueError):
            ResilienceConfig(watchdog_timeout=0.0)
        with pytest.raises(ValueError):
            ResilienceConfig(max_worker_restarts=-1)

    def test_cluster_section_reaches_executor(self):
        """The resilience section of a threads cluster spec configures
        the executor's watchdog and restart budget."""
        from repro.resilience import ResilienceConfig
        from repro.runtime import Cluster, laptop_machine
        from repro.runtime.executor import get_executor

        cfg = ResilienceConfig.from_config(
            {"watchdog_timeout": 9.0, "max_worker_restarts": 4}
        )
        cluster = Cluster(
            2, laptop_machine(), resilience=cfg, backend="threads"
        )
        ex = get_executor(cluster)
        assert ex.watchdog_seconds == 9.0
        assert ex._max_worker_restarts == 4

    def test_cli_flags_inject_resilience_section(self, tmp_path, capsys):
        from repro.config import main

        input_path = tmp_path / "input.json"
        input_path.write_text(json.dumps({
            "n_sites": 8,
            "hamiltonian": {"model": "heisenberg_chain"},
            "basis": {"hamming_weight": 4},
            "solver": {"k": 1, "tol": 1e-10},
            "cluster": {"n_locales": 2, "machine": "laptop"},
        }))
        main([
            str(input_path),
            "--watchdog-timeout", "30",
            "--max-worker-restarts", "4",
        ])
        out = json.loads(capsys.readouterr().out)
        assert out["converged"]

    def test_cli_flags_require_cluster_section(self, tmp_path):
        from repro.config import main

        input_path = tmp_path / "input.json"
        input_path.write_text(json.dumps(BASE_SPEC))
        with pytest.raises(ReproError, match="watchdog-timeout"):
            main([str(input_path), "--watchdog-timeout", "30"])
        with pytest.raises(ReproError, match="max-worker-restarts"):
            main([str(input_path), "--max-worker-restarts", "1"])


class TestMatvecKnobs:
    """Round-trips for the pipeline knobs (``cluster.matvec`` section and
    the ``--batch-size`` / ``--consumer-fraction`` / ``--work-stealing``
    flags) and the autotuner modes (``tune`` / ``--tune``)."""

    CLUSTER_SPEC = {
        "n_sites": 10,
        "hamiltonian": {"model": "heisenberg_chain"},
        "basis": {"hamming_weight": 5},
        "solver": {"k": 1, "tol": 1e-10},
        "cluster": {"n_locales": 2, "machine": "laptop"},
    }

    def _with_cluster(self, **cluster_extra):
        spec = json.loads(json.dumps(self.CLUSTER_SPEC))
        spec["cluster"].update(cluster_extra)
        return spec

    def test_matvec_section_round_trip(self):
        knobs = {
            "batch_size": 64,
            "consumer_fraction": 0.25,
            "work_stealing": True,
            "block_width": 1,
        }
        plain = run_simulation(load_simulation(self.CLUSTER_SPEC))
        tuned = run_simulation(
            load_simulation(self._with_cluster(matvec=knobs))
        )
        # knobs are echoed verbatim and never change the physics
        assert tuned["matvec"] == knobs
        assert "matvec" not in plain
        np.testing.assert_allclose(
            tuned["eigenvalues"], plain["eigenvalues"], atol=1e-8
        )

    def test_matvec_section_validation(self):
        from repro.errors import ConfigError

        bad_sections = [
            {"batch_size": 0},
            {"batch_size": True},
            {"consumer_fraction": 0.0},
            {"consumer_fraction": 1.5},
            {"work_stealing": 1},
            {"block_width": 0},
            {"granularity": 4},
        ]
        for section in bad_sections:
            with pytest.raises(ConfigError):
                run_simulation(
                    load_simulation(self._with_cluster(matvec=section))
                )

    def test_cli_flags_inject_matvec_section(self, tmp_path, capsys):
        from repro.config import main

        input_path = tmp_path / "input.json"
        input_path.write_text(json.dumps(self.CLUSTER_SPEC))
        main([
            str(input_path),
            "--batch-size", "128",
            "--consumer-fraction", "0.25",
            "--work-stealing",
        ])
        out = json.loads(capsys.readouterr().out)
        assert out["converged"]
        assert out["matvec"] == {
            "batch_size": 128,
            "consumer_fraction": 0.25,
            "work_stealing": True,
        }

    def test_cli_flags_override_file_section(self, tmp_path, capsys):
        from repro.config import main

        input_path = tmp_path / "input.json"
        input_path.write_text(json.dumps(
            self._with_cluster(matvec={"batch_size": 32})
        ))
        main([str(input_path), "--batch-size", "256"])
        out = json.loads(capsys.readouterr().out)
        assert out["matvec"]["batch_size"] == 256

    def test_cli_flags_require_cluster_section(self, tmp_path):
        from repro.config import main

        input_path = tmp_path / "input.json"
        input_path.write_text(json.dumps(BASE_SPEC))
        for flags in (
            ["--batch-size", "64"],
            ["--consumer-fraction", "0.25"],
            ["--work-stealing"],
            ["--tune", "auto"],
            ["--tune-cache", "cache.json"],
        ):
            with pytest.raises(ReproError, match=flags[0]):
                main([str(input_path)] + flags)

    def test_tune_auto_round_trip(self, tmp_path, capsys):
        from repro.config import main

        input_path = tmp_path / "input.json"
        cache_path = tmp_path / "cache.json"
        input_path.write_text(json.dumps(self.CLUSTER_SPEC))
        args = [
            str(input_path),
            "--tune", "auto",
            "--tune-cache", str(cache_path),
        ]
        main(args)
        cold = json.loads(capsys.readouterr().out)
        assert not cold["tuned"]["from_cache"]
        assert cache_path.exists()
        main(args)
        warm = json.loads(capsys.readouterr().out)
        assert warm["tuned"]["from_cache"]
        assert warm["tuned"]["knobs"] == cold["tuned"]["knobs"]
        np.testing.assert_allclose(
            warm["eigenvalues"], cold["eigenvalues"], atol=1e-10
        )

    def test_invalid_tune_mode_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            run_simulation(
                load_simulation(self._with_cluster(tune="always"))
            )


class TestObservables:
    SPEC = {
        "n_sites": 12,
        "hamiltonian": {"model": "heisenberg_chain"},
        "basis": {
            "hamming_weight": 6,
            "momentum": 0,
            "parity": 0,
            "inversion": 0,
        },
        "solver": {"k": 1, "tol": 1e-10},
        "observables": [
            {"type": "spin_correlation", "distance": 1},
            {"type": "spin_correlation", "distance": 3, "name": "far"},
            {"type": "staggered_magnetization"},
        ],
    }

    def test_serial_observables(self):
        result = run_simulation(load_simulation(self.SPEC))
        obs = result["observables"]
        # bond-energy sum rule: n * <S0.S1> == E0
        assert 12 * obs["S0.S1"] == pytest.approx(
            result["eigenvalues"][0], abs=1e-7
        )
        # zero total staggered moment in the singlet ground state
        assert obs["Sz_staggered"] == pytest.approx(0.0, abs=1e-8)
        assert obs["far"] < 0  # antiferromagnetic at odd distance

    def test_distributed_observables_match_serial(self):
        serial = run_simulation(load_simulation(self.SPEC))
        spec = dict(self.SPEC)
        spec["cluster"] = {"n_locales": 3, "machine": "laptop", "cores": 4}
        distributed = run_simulation(load_simulation(spec))
        for name, value in serial["observables"].items():
            assert distributed["observables"][name] == pytest.approx(
                value, abs=1e-7
            )

    def test_magnetization_observable(self):
        spec = {
            "n_sites": 8,
            "hamiltonian": {"model": "heisenberg_chain"},
            "basis": {"hamming_weight": 6},
            "observables": [{"type": "magnetization"}],
        }
        result = run_simulation(load_simulation(spec))
        # 6 up, 2 down -> Sz_total = (6 - 2) / 2 = 2
        assert result["observables"]["Sz_total"] == pytest.approx(2.0)

    def test_unknown_observable_rejected(self):
        spec = dict(self.SPEC)
        spec["observables"] = [{"type": "wilson_loop"}]
        with pytest.raises(ReproError):
            load_simulation(spec)
