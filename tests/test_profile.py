"""Tests for the wall-clock profiling layer (repro.telemetry.profile).

Covers the concurrent-writer span-buffer machinery that gives the
``threads`` backend a thread-safe wall-clock trace mode, and runs a real
threads-backend trace through every ``repro-inspect`` subcommand —
analyze, cost, jobs, diff, calibrate — plus the clock-domain guard rails.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

import repro
from repro.basis import SymmetricBasis
from repro.distributed import (
    DistributedOperator,
    DistributedVector,
    enumerate_states,
)
from repro.runtime import Cluster, laptop_machine
from repro.symmetry import chain_symmetries
from repro.telemetry import MetricsRegistry, Telemetry, TraceRecorder, use
from repro.telemetry.analysis import (
    TraceFormatError,
    analyze_trace,
    calibrate_traces,
    main,
)
from repro.telemetry.jobs import job
from repro.telemetry.profile import (
    NULL_PROFILER,
    ExecutorProfiler,
    ProfiledLock,
    SpanBuffer,
)


class TestSpanBuffer:
    def test_capacity_bound_counts_drops(self):
        buf = SpanBuffer(("locale0", "w0"), capacity=3)
        for i in range(5):
            buf.span(f"s{i}", float(i), 0.5)
        assert len(buf.spans) == 3
        assert buf.dropped == 2

    def test_job_id_stamped_at_append_time(self):
        buf = SpanBuffer(("locale0", "w0"))
        with job("alpha", tenant="t"):
            buf.span("work", 0.0, 1.0)
        buf.span("untagged", 1.0, 1.0)
        assert buf.spans[0][3]["job"] == "alpha"
        assert buf.spans[1][3] is None

    def test_concurrent_writers_merge_monotone_per_track(self):
        """N worker threads × M spans each, merged through one recorder.

        This is the stress test of the wall-clock trace mode: every
        buffer is single-writer, the flush runs after the writers join,
        and the merged trace must hold every span with per-track
        monotone start times.
        """
        n_threads, n_spans = 8, 500
        trace = TraceRecorder()
        profile = ExecutorProfiler(trace=trace, metrics=None, wall=True)
        buffers = [
            profile.buffer((f"locale{i % 2}", f"worker{i}"))
            for i in range(n_threads)
        ]
        start_gate = threading.Event()

        def writer(buf, tag):
            start_gate.wait()
            for i in range(n_spans):
                buf.span(f"{tag}-{i}", i * 1e-3, 1e-3, {"i": i})

        threads = [
            threading.Thread(target=writer, args=(buf, f"t{i}"))
            for i, buf in enumerate(buffers)
        ]
        for t in threads:
            t.start()
        start_gate.set()
        for t in threads:
            t.join()
        profile.flush()
        chrome = trace.to_chrome()
        assert chrome["clock"] == "wall"
        spans = [e for e in chrome["traceEvents"] if e.get("ph") == "X"]
        assert len(spans) == n_threads * n_spans
        by_track: dict = {}
        for event in spans:
            by_track.setdefault((event["pid"], event["tid"]), []).append(
                event["ts"]
            )
        assert len(by_track) == n_threads
        for stamps in by_track.values():
            assert stamps == sorted(stamps), "track not monotone after merge"

    def test_flush_is_idempotent(self):
        trace = TraceRecorder()
        profile = ExecutorProfiler(trace=trace, wall=True)
        buf = profile.buffer(("locale0", "w0"))
        buf.span("a", 0.0, 1.0)
        profile.flush()
        profile.flush()
        spans = [
            e for e in trace.to_chrome()["traceEvents"] if e.get("ph") == "X"
        ]
        assert len(spans) == 1


class TestExecutorProfiler:
    def test_null_profiler_is_fully_disabled(self):
        assert not NULL_PROFILER.enabled
        assert not NULL_PROFILER.tracing
        assert not NULL_PROFILER.metering
        NULL_PROFILER.flush()  # must be a no-op, not an error

    def test_disabled_sinks_are_dropped(self):
        from repro.telemetry.metrics import NullMetricsRegistry
        from repro.telemetry.trace import NullTraceRecorder

        profile = ExecutorProfiler(
            trace=NullTraceRecorder(), metrics=NullMetricsRegistry()
        )
        assert not profile.enabled

    def test_wait_hold_worker_families(self):
        metrics = MetricsRegistry()
        profile = ExecutorProfiler(metrics=metrics)
        profile.wait("flag", "go", 0.25)
        profile.wait("queue", "ready", 0.5)
        profile.hold("resource", "nic0", 0.125)
        profile.worker("cons-0", 0, busy=2.0, blocked=1.0)
        profile.queue_depth("ready", 3)
        profile.queue_depth("ready", 1)
        profile.flush()
        snap = metrics.snapshot()
        hists = {name: s for (name, _), s in snap.histograms.items()}
        assert hists["executor.flag_wait_seconds"]["sum"] == 0.25
        assert hists["executor.queue_wait_seconds"]["sum"] == 0.5
        assert hists["executor.resource_hold_seconds"]["sum"] == 0.125
        counters = {name: v for (name, _), v in snap.counters.items()}
        assert counters["executor.worker_busy_seconds"] == 2.0
        assert counters["executor.worker_blocked_seconds"] == 1.0
        gauges = dict(snap.gauges)
        assert gauges[("executor.queue_depth", (("queue", "ready"),))] == 1.0
        assert (
            gauges[("executor.queue_depth_max", (("queue", "ready"),))] == 3.0
        )

    def test_profiled_lock_outermost_only(self):
        metrics = MetricsRegistry()
        profile = ExecutorProfiler(metrics=metrics)
        lock = ProfiledLock(threading.RLock(), profile, "mutex")
        with lock:
            with lock:  # reentrant: must not observe a nested hold
                pass
        profile.flush()
        snap = metrics.snapshot()
        holds = {
            name: s
            for (name, _), s in snap.histograms.items()
            if name == "executor.lock_hold_seconds"
        }
        assert holds["executor.lock_hold_seconds"]["count"] == 1


# -- a real threads trace through every repro-inspect subcommand -------------


CHAIN, WEIGHT, BATCH = 14, 7, 32


def _traced_matvec(backend, workers=4):
    group = chain_symmetries(CHAIN, momentum=0, parity=0, inversion=0)
    serial = SymmetricBasis(group, hamming_weight=WEIGHT)
    expr = repro.heisenberg_chain(CHAIN)
    rng = np.random.default_rng(7)
    x = rng.standard_normal(serial.dim).astype(serial.scalar_dtype)
    tele = Telemetry.enabled()
    cluster = Cluster(workers, laptop_machine(cores=2), backend=backend)
    template = SymmetricBasis(group, hamming_weight=WEIGHT, build=False)
    dbasis, _ = enumerate_states(cluster, template, use_weight_shortcut=True)
    dx = DistributedVector.from_serial(dbasis, serial, x)
    dop = DistributedOperator(expr, dbasis, method="pc", batch_size=BATCH)
    with use(tele):
        with job("fixture", tenant="tests", workload="chain"):
            dop.matvec(dx)
    return tele


@pytest.fixture(scope="module")
def wall_trace_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("profile") / "wall_trace.json"
    _traced_matvec("threads").trace.save(path)
    return str(path)


@pytest.fixture(scope="module")
def sim_trace_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("profile") / "sim_trace.json"
    _traced_matvec("sim").trace.save(path)
    return str(path)


class TestInspectOnThreadsTrace:
    def test_trace_is_wall_clock_with_per_thread_tracks(self, wall_trace_path):
        chrome = json.loads(open(wall_trace_path).read())
        assert chrome["clock"] == "wall"
        names = {
            e["name"]
            for e in chrome["traceEvents"]
            if e.get("ph") == "X"
        }
        # Real per-thread wait spans, not just Timeout stamps.
        assert {"generate", "search+accum"} <= names
        assert names & {"stall", "idle"} or any(
            n.startswith("wait:") for n in names
        )

    def test_analyze(self, wall_trace_path, capsys):
        assert main([wall_trace_path]) == 0
        out = capsys.readouterr().out
        assert "clock: wall seconds" in out

    def test_analyze_json(self, wall_trace_path, capsys):
        assert main([wall_trace_path, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["clock"] == "wall"
        assert data["makespan_seconds"] > 0.0

    def test_cost_attributes_jobs_on_threads(self, wall_trace_path, capsys):
        assert main(["cost", wall_trace_path, "--json"]) == 0
        rows = {
            r["job"]: r for r in json.loads(capsys.readouterr().out)
        }
        assert rows["fixture"]["clock"] == "wall"
        assert rows["fixture"]["busy_seconds"] > 0.0
        assert rows["fixture"]["spans"] > 0

    def test_jobs(self, wall_trace_path, capsys):
        assert main(["jobs", wall_trace_path]) == 0
        out = capsys.readouterr().out
        assert "clock: wall seconds" in out
        assert "fixture" in out

    def test_diff_same_clock_succeeds(self, wall_trace_path, capsys):
        assert main(["diff", wall_trace_path, wall_trace_path]) == 0

    def test_diff_cross_clock_exits_2(
        self, wall_trace_path, sim_trace_path, capsys
    ):
        assert main(["diff", sim_trace_path, wall_trace_path]) == 2
        err = capsys.readouterr().err
        assert "repro-inspect: error:" in err
        assert "clock domain" in err

    def test_calibrate(self, wall_trace_path, sim_trace_path, capsys):
        assert main(["calibrate", sim_trace_path, wall_trace_path]) == 0
        out = capsys.readouterr().out
        assert "model (simulated seconds) vs measured (wall seconds)" in out
        assert "makespan" in out

    def test_calibrate_json(self, wall_trace_path, sim_trace_path, capsys):
        assert main(
            ["calibrate", sim_trace_path, wall_trace_path, "--json"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["clock"] == {"model": "sim", "measured": "wall"}
        assert report["makespan_ratio"] > 0.0
        assert report["phases"], "no per-phase rows in calibrate report"
        by_phase = {p["phase"]: p for p in report["phases"]}
        assert "generate" in by_phase
        assert by_phase["generate"]["model_seconds"] > 0.0
        assert by_phase["generate"]["measured_seconds"] > 0.0

    def test_calibrate_rejects_swapped_inputs(
        self, wall_trace_path, sim_trace_path
    ):
        with pytest.raises(TraceFormatError, match="model"):
            calibrate_traces(wall_trace_path, sim_trace_path)
        assert main(["calibrate", wall_trace_path, sim_trace_path]) == 2

    def test_analysis_api_reads_clock(self, wall_trace_path, sim_trace_path):
        assert analyze_trace(wall_trace_path).clock == "wall"
        assert analyze_trace(sim_trace_path).clock == "sim"
