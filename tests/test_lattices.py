"""Tests for the 2-D lattice builders (triangular, kagome) and their
symmetric sectors."""

import numpy as np
import pytest

import repro
from repro.basis import SpinBasis, SymmetricBasis
from repro.operators.hamiltonians import (
    kagome_12_edges,
    square_lattice_edges,
    triangular_lattice_edges,
)
from repro.symmetry import SymmetryGroup, rectangle_translation


class TestTriangularLattice:
    def test_edge_count(self):
        # A periodic triangular lattice has 3 edges per site.
        assert len(triangular_lattice_edges(3, 3)) == 27
        assert len(triangular_lattice_edges(4, 3)) == 36

    def test_coordination_number(self):
        edges = triangular_lattice_edges(4, 4)
        degree = np.zeros(16, dtype=int)
        for i, j in edges:
            degree[i] += 1
            degree[j] += 1
        assert np.all(degree == 6)

    def test_no_duplicate_edges(self):
        edges = triangular_lattice_edges(3, 4)
        assert len(edges) == len({tuple(sorted(e)) for e in edges})

    def test_translation_symmetry(self):
        # The Hamiltonian commutes with both lattice translations.
        nx, ny = 3, 3
        h = repro.heisenberg(triangular_lattice_edges(nx, ny))
        for axis in (0, 1):
            t = rectangle_translation(nx, ny, axis=axis)
            moved = repro.transform_expression(h, t.permutation)
            assert moved.isclose(h)


class TestKagome12:
    def test_edge_count_and_coordination(self):
        edges = kagome_12_edges()
        assert len(edges) == 24  # 2 edges per site on the kagome lattice
        degree = np.zeros(12, dtype=int)
        for i, j in edges:
            degree[i] += 1
            degree[j] += 1
        assert np.all(degree == 4)

    def test_ground_state_energy_matches_literature(self):
        # The 12-site periodic kagome cluster: E0/site = -0.45374 (a
        # standard reference value for kagome ED).
        basis = SpinBasis(12, hamming_weight=6)
        op = repro.Operator(repro.heisenberg(kagome_12_edges()), basis)
        result = repro.lanczos(
            op.matvec,
            np.random.default_rng(0).standard_normal(basis.dim),
            k=1,
            tol=1e-10,
        )
        assert result.eigenvalues[0] / 12 == pytest.approx(-0.45374, abs=1e-4)

    def test_triangles_per_site(self):
        # Every site belongs to exactly two triangles (corner sharing).
        edges = set(kagome_12_edges())

        def is_edge(i, j):
            return tuple(sorted((i, j))) in edges

        triangle_count = np.zeros(12, dtype=int)
        for i in range(12):
            for j in range(i + 1, 12):
                for k in range(j + 1, 12):
                    if is_edge(i, j) and is_edge(j, k) and is_edge(i, k):
                        triangle_count[[i, j, k]] += 1
        assert np.all(triangle_count == 2)


class TestSquareLatticeSectors:
    def test_torus_translation_sector_dimensions(self):
        # On a 3x2 torus the translation group has 6 elements; sector
        # dimensions summed over all momenta recover the U(1) dimension.
        from math import comb

        from repro.symmetry import sector_dimension
        nx, ny = 3, 2
        total = 0
        for kx in range(nx):
            for ky in range(ny):
                group = SymmetryGroup.from_generators(
                    [
                        rectangle_translation(nx, ny, axis=0, sector=kx),
                        rectangle_translation(nx, ny, axis=1, sector=ky),
                    ]
                )
                total += sector_dimension(group, hamming_weight=3)
        assert total == comb(6, 3)

    def test_2d_symmetric_matvec_matches_dense(self, rng):
        nx, ny = 3, 2
        group = SymmetryGroup.from_generators(
            [
                rectangle_translation(nx, ny, axis=0, sector=0),
                rectangle_translation(nx, ny, axis=1, sector=0),
            ]
        )
        basis = SymmetricBasis(group, hamming_weight=3)
        h = repro.heisenberg(square_lattice_edges(nx, ny))
        op = repro.Operator(h, basis)
        x = rng.standard_normal(basis.dim)
        assert np.allclose(op.matvec(x), op.to_dense() @ x)

    def test_2d_sector_spectrum_contained_in_full(self):
        nx, ny = 3, 2
        group = SymmetryGroup.from_generators(
            [
                rectangle_translation(nx, ny, axis=0, sector=1),
                rectangle_translation(nx, ny, axis=1, sector=0),
            ]
        )
        basis = SymmetricBasis(group, hamming_weight=3)
        h = repro.heisenberg(square_lattice_edges(nx, ny))
        sector = np.linalg.eigvalsh(repro.Operator(h, basis).to_dense())
        full_basis = SpinBasis(6, hamming_weight=3)
        full = np.linalg.eigvalsh(repro.Operator(h, full_basis).to_dense())
        for e in sector:
            assert np.min(np.abs(full - e)) < 1e-8
