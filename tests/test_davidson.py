"""Tests for the block Davidson eigensolver."""

import numpy as np
import pytest

import repro
from repro.basis import SpinBasis, SymmetricBasis
from repro.errors import ConvergenceError
from repro.linalg import davidson, lanczos
from repro.symmetry import chain_symmetries


@pytest.fixture(scope="module")
def operator():
    basis = SpinBasis(12, hamming_weight=6)
    return repro.Operator(repro.heisenberg_chain(12), basis)


@pytest.fixture(scope="module")
def dense_spectrum(operator):
    return np.linalg.eigvalsh(operator.to_dense())


class TestCorrectness:
    def test_lowest_eigenvalue(self, operator, dense_spectrum):
        res = davidson(operator.matvec, operator.diagonal(), k=1, tol=1e-10)
        assert res.converged
        assert res.eigenvalues[0] == pytest.approx(dense_spectrum[0], abs=1e-8)

    def test_block_of_five(self, operator, dense_spectrum):
        res = davidson(operator.matvec, operator.diagonal(), k=5, tol=1e-9)
        assert np.allclose(res.eigenvalues, dense_spectrum[:5], atol=1e-7)

    def test_resolves_exact_degeneracy(self, operator, dense_spectrum):
        # The 12-site chain's U(1) spectrum has an exact 2-fold degeneracy
        # among the lowest five levels (momentum +-k pairs).  A single
        # Lanczos run cannot produce both copies; block Davidson can.
        assert dense_spectrum[3] == pytest.approx(dense_spectrum[4], abs=1e-10)
        res = davidson(operator.matvec, operator.diagonal(), k=5, tol=1e-9)
        assert res.eigenvalues[3] == pytest.approx(res.eigenvalues[4], abs=1e-7)

    def test_lanczos_misses_degenerate_copy(self, operator, dense_spectrum):
        # Documented limitation that motivates the block solver: Lanczos
        # from one vector returns only one Ritz value per degenerate pair,
        # so its 5th value differs from the true 5th eigenvalue.
        res = lanczos(
            operator.matvec,
            np.random.default_rng(0).standard_normal(operator.dim),
            k=5,
            tol=1e-10,
            max_iter=300,
        )
        assert res.eigenvalues[4] != pytest.approx(dense_spectrum[4], abs=1e-6)

    def test_eigenvectors_residuals(self, operator):
        res = davidson(operator.matvec, operator.diagonal(), k=3, tol=1e-9)
        for j in range(3):
            vec = res.eigenvectors[:, j]
            r = operator.matvec(vec) - res.eigenvalues[j] * vec
            assert np.linalg.norm(r) < 1e-7

    def test_eigenvectors_orthonormal(self, operator):
        res = davidson(operator.matvec, operator.diagonal(), k=4, tol=1e-9)
        v = res.eigenvectors
        assert np.allclose(v.conj().T @ v, np.eye(4), atol=1e-8)

    def test_complex_sector(self):
        group = chain_symmetries(10, momentum=2, parity=None, inversion=None)
        basis = SymmetricBasis(group, hamming_weight=5)
        op = repro.Operator(repro.heisenberg_chain(10), basis)
        ref = np.linalg.eigvalsh(op.to_dense())[:2]
        res = davidson(op.matvec, op.diagonal(), k=2, tol=1e-9)
        assert np.allclose(res.eigenvalues, ref, atol=1e-7)

    def test_restart_path(self, operator, dense_spectrum):
        # Force frequent restarts with a tiny subspace cap.
        res = davidson(
            operator.matvec,
            operator.diagonal(),
            k=2,
            tol=1e-8,
            max_subspace=6,
            max_iter=400,
        )
        assert np.allclose(res.eigenvalues, dense_spectrum[:2], atol=1e-6)


class TestInterface:
    def test_explicit_starting_block(self, operator, dense_spectrum):
        rng = np.random.default_rng(5)
        v0 = rng.standard_normal((operator.dim, 4))
        res = davidson(operator.matvec, operator.diagonal(), k=2, v0=v0)
        assert np.allclose(res.eigenvalues, dense_spectrum[:2], atol=1e-7)

    def test_one_dim_start_vector_promoted(self, operator):
        v0 = np.random.default_rng(0).standard_normal(operator.dim)
        res = davidson(operator.matvec, operator.diagonal(), k=1, v0=v0)
        assert res.converged

    def test_too_narrow_block_rejected(self, operator):
        v0 = np.random.default_rng(0).standard_normal((operator.dim, 1))
        with pytest.raises(ValueError):
            davidson(operator.matvec, operator.diagonal(), k=2, v0=v0)

    def test_bad_k_rejected(self, operator):
        with pytest.raises(ValueError):
            davidson(operator.matvec, operator.diagonal(), k=0)

    def test_convergence_error(self, operator):
        with pytest.raises(ConvergenceError):
            davidson(
                operator.matvec, operator.diagonal(), k=1, tol=1e-14, max_iter=2
            )

    def test_no_raise_flag(self, operator):
        res = davidson(
            operator.matvec,
            operator.diagonal(),
            k=1,
            tol=1e-14,
            max_iter=2,
            raise_on_no_convergence=False,
        )
        assert not res.converged

    def test_tiny_matrix(self):
        diag = np.array([3.0, 1.0, 2.0])
        res = davidson(lambda v: diag * v, diag, k=3, tol=1e-12)
        assert np.allclose(np.sort(res.eigenvalues), [1.0, 2.0, 3.0])
