"""Property-based tests of the operator algebra.

A random-expression generator drives Hypothesis checks that the symbolic
algebra is an exact homomorphism onto dense matrices — the strongest
possible statement about the canonicalization (term collection, the
``S- S+`` branching rule, adjoints, transforms).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

import repro
from repro.operators.expression import Expression
from repro.operators.matrix import expression_to_dense

N_SITES = 4

_LEAVES = [
    repro.sigma_x,
    repro.sigma_y,
    repro.sigma_z,
    repro.sigma_plus,
    repro.sigma_minus,
    repro.number,
]


@st.composite
def expressions(draw, max_terms=4, max_factors=3):
    """A random expression: sum of products of random single-site leaves."""
    n_terms = draw(st.integers(min_value=1, max_value=max_terms))
    total = Expression()
    for _ in range(n_terms):
        coeff = complex(
            draw(st.integers(min_value=-3, max_value=3)),
            draw(st.integers(min_value=-3, max_value=3)),
        )
        term = repro.Expression({(): coeff})
        n_factors = draw(st.integers(min_value=1, max_value=max_factors))
        for _ in range(n_factors):
            leaf = draw(st.sampled_from(_LEAVES))
            site = draw(st.integers(min_value=0, max_value=N_SITES - 1))
            term = term * leaf(site)
        total = total + term
    return total


def dense(expr):
    return expression_to_dense(expr, N_SITES)


SETTINGS = settings(max_examples=60, deadline=None)


class TestDenseHomomorphism:
    @given(expressions(), expressions())
    @SETTINGS
    def test_addition(self, a, b):
        assert np.allclose(dense(a + b), dense(a) + dense(b))

    @given(expressions(), expressions())
    @SETTINGS
    def test_multiplication(self, a, b):
        assert np.allclose(dense(a * b), dense(a) @ dense(b))

    @given(expressions())
    @SETTINGS
    def test_adjoint(self, a):
        assert np.allclose(dense(a.adjoint()), dense(a).conj().T)

    @given(expressions(), st.integers(min_value=-3, max_value=3))
    @SETTINGS
    def test_scalar_multiplication(self, a, c):
        assert np.allclose(dense(c * a), c * dense(a))

    @given(expressions())
    @SETTINGS
    def test_subtraction_from_self_is_zero(self, a):
        assert (a - a).is_zero

    @given(expressions())
    @SETTINGS
    def test_hermitian_combination(self, a):
        h = a + a.adjoint()
        assert h.is_hermitian()
        m = dense(h)
        assert np.allclose(m, m.conj().T)

    @given(expressions())
    @SETTINGS
    def test_norm_zero_iff_zero_matrix(self, a):
        # canonical uniqueness: the 1-norm surrogate vanishes exactly when
        # the dense matrix vanishes
        assert (a.norm() < 1e-12) == np.allclose(dense(a), 0.0)

    @given(expressions())
    @SETTINGS
    def test_translation_conjugation(self, a):
        from repro.symmetry import translation

        t = translation(N_SITES).permutation
        moved = repro.transform_expression(a, t)
        states = np.arange(1 << N_SITES, dtype=np.uint64)
        rows = t(states).astype(np.int64)
        u = np.zeros((1 << N_SITES, 1 << N_SITES))
        u[rows, np.arange(1 << N_SITES)] = 1.0
        assert np.allclose(dense(moved), u @ dense(a) @ u.T)


class TestCompiledAgainstDense:
    @given(expressions())
    @SETTINGS
    def test_compiled_matvec_matches_dense(self, a):
        from repro.basis import SpinBasis
        from repro.operators import compile_expression

        compiled = compile_expression(a, N_SITES)
        basis = SpinBasis(N_SITES)
        m = dense(a)
        # rebuild the matrix from the kernels
        rebuilt = np.zeros_like(m)
        np.fill_diagonal(rebuilt, compiled.diagonal_values(basis.states))
        sources, betas, coeffs = compiled.apply_off_diag(basis.states)
        np.add.at(
            rebuilt, (betas.astype(np.int64), sources), coeffs.astype(complex)
        )
        assert np.allclose(rebuilt, m)

    @given(expressions())
    @SETTINGS
    def test_magnetization_conservation_detection(self, a):
        from repro.basis import SpinBasis
        from repro.operators import compile_expression

        compiled = compile_expression(a, N_SITES)
        # ground truth: does dense matrix mix different Sz sectors?
        m = dense(a)
        weights = np.array(
            [bin(s).count("1") for s in range(1 << N_SITES)]
        )
        mixes = False
        rows, cols = np.nonzero(np.abs(m) > 1e-12)
        if rows.size:
            mixes = bool(np.any(weights[rows] != weights[cols]))
        assert compiled.conserves_magnetization == (not mixes)
