"""Tests for the lattice-symmetry factories."""

import numpy as np
import pytest

from repro.symmetry import (
    SymmetryGroup,
    rectangle_translation,
    reflection,
    spin_inversion,
    translation,
)


class TestChainFactories:
    def test_translation_action(self):
        t = translation(6)
        assert int(t(np.uint64(0b000001))) == 0b000010

    def test_translation_composed_n_times_is_identity(self):
        n = 7
        t = translation(n)
        state = np.uint64(0b0110001)
        out = state
        for _ in range(n):
            out = t(out)
        assert int(out) == int(state)

    def test_reflection_action(self):
        r = reflection(6)
        assert int(r(np.uint64(0b000011))) == 0b110000

    def test_reflection_involution(self):
        r = reflection(9)
        state = np.uint64(0b101100110)
        assert int(r(r(state))) == int(state)

    def test_spin_inversion_action(self):
        x = spin_inversion(5)
        assert int(x(np.uint64(0b00000))) == 0b11111

    def test_translation_and_reflection_generate_dihedral(self):
        n = 6
        g = SymmetryGroup.from_generators([translation(n), reflection(n)])
        assert g.size == 2 * n


class TestRectangleTranslation:
    def test_x_translation_period(self):
        nx, ny = 4, 3
        t = rectangle_translation(nx, ny, axis=0)
        assert t.permutation.order == nx

    def test_y_translation_period(self):
        nx, ny = 4, 3
        t = rectangle_translation(nx, ny, axis=1)
        assert t.permutation.order == ny

    def test_translations_commute(self):
        nx, ny = 3, 4
        tx = rectangle_translation(nx, ny, axis=0).permutation
        ty = rectangle_translation(nx, ny, axis=1).permutation
        assert tx @ ty == ty @ tx

    def test_moves_correct_site(self):
        nx, ny = 4, 2
        tx = rectangle_translation(nx, ny, axis=0)
        # site (0,0) = bit 0 moves to site (1,0) = bit 1
        assert int(tx(np.uint64(1))) == 0b10
        ty = rectangle_translation(nx, ny, axis=1)
        # site (0,0) moves to site (0,1) = bit nx
        assert int(ty(np.uint64(1))) == 1 << nx

    def test_rejects_axis(self):
        with pytest.raises(ValueError):
            rectangle_translation(3, 3, axis=2)

    def test_rejects_too_large(self):
        with pytest.raises(ValueError):
            rectangle_translation(9, 9, axis=0)

    def test_group_size_torus(self):
        nx, ny = 3, 4
        g = SymmetryGroup.from_generators(
            [
                rectangle_translation(nx, ny, axis=0),
                rectangle_translation(nx, ny, axis=1),
            ]
        )
        assert g.size == nx * ny
