"""Tests for vector I/O through the block distribution."""

import numpy as np
import pytest

import repro
from repro.basis import SpinBasis, SymmetricBasis
from repro.distributed import (
    BlockArray,
    DistributedVector,
    enumerate_states,
)
from repro.errors import DistributionError
from repro.io import (
    load_block_array,
    load_distributed_vector,
    save_block_array,
    save_distributed_vector,
)
from repro.runtime import Cluster, laptop_machine
from repro.symmetry import chain_symmetries


class TestBlockArrayIO:
    def test_roundtrip(self, tmp_path, rng):
        cluster = Cluster(3, laptop_machine())
        data = rng.standard_normal(100)
        arr = BlockArray.from_global(cluster, data)
        save_block_array(tmp_path, arr, name="x")
        loaded = load_block_array(tmp_path, cluster, name="x")
        assert np.array_equal(loaded.to_global(), data)

    def test_manifest_written(self, tmp_path):
        cluster = Cluster(2, laptop_machine())
        arr = BlockArray.from_global(cluster, np.arange(10.0))
        manifest = save_block_array(tmp_path, arr)
        assert manifest.exists()
        assert "global_length" in manifest.read_text()

    def test_locale_count_mismatch_rejected(self, tmp_path):
        cluster = Cluster(2, laptop_machine())
        arr = BlockArray.from_global(cluster, np.arange(10.0))
        save_block_array(tmp_path, arr)
        other = Cluster(3, laptop_machine())
        with pytest.raises(DistributionError):
            load_block_array(tmp_path, other)

    def test_dtype_preserved(self, tmp_path):
        cluster = Cluster(2, laptop_machine())
        arr = BlockArray.from_global(
            cluster, np.arange(10, dtype=np.complex128)
        )
        save_block_array(tmp_path, arr, name="c")
        loaded = load_block_array(tmp_path, cluster, name="c")
        assert loaded.dtype == np.complex128


class TestDistributedVectorIO:
    @pytest.fixture
    def setup(self):
        group = chain_symmetries(12, momentum=0, parity=0, inversion=0)
        serial = SymmetricBasis(group, hamming_weight=6)
        cluster = Cluster(3, laptop_machine(cores=2))
        template = SymmetricBasis(group, hamming_weight=6, build=False)
        dbasis, _ = enumerate_states(cluster, template)
        return serial, dbasis

    def test_roundtrip_same_cluster(self, setup, tmp_path, rng):
        serial, dbasis = setup
        x = rng.standard_normal(serial.dim)
        vec = DistributedVector.from_serial(dbasis, serial, x)
        save_distributed_vector(tmp_path, vec, name="gs")
        loaded = load_distributed_vector(tmp_path, dbasis, name="gs")
        assert np.allclose(loaded.to_serial(serial), x)

    def test_roundtrip_different_locale_count(self, setup, tmp_path, rng):
        # Written from 3 locales, read into 2 — the block file format is
        # locale-count independent (sorted basis-state order on disk).
        serial, dbasis3 = setup
        x = rng.standard_normal(serial.dim)
        vec = DistributedVector.from_serial(dbasis3, serial, x)
        save_distributed_vector(tmp_path, vec, name="v")

        cluster2 = Cluster(2, laptop_machine(cores=2))
        group = dbasis3.template.group
        template = SymmetricBasis(group, hamming_weight=6, build=False)
        dbasis2, _ = enumerate_states(cluster2, template)
        loaded = load_distributed_vector(tmp_path, dbasis2, name="v")
        assert np.allclose(loaded.to_serial(serial), x)

    def test_dimension_mismatch_rejected(self, setup, tmp_path, rng):
        serial, dbasis = setup
        vec = DistributedVector.from_serial(
            dbasis, serial, rng.standard_normal(serial.dim)
        )
        save_distributed_vector(tmp_path, vec, name="v")
        other_cluster = Cluster(3, laptop_machine(cores=2))
        other_dbasis, _ = enumerate_states(
            other_cluster, SpinBasis(10, hamming_weight=5)
        )
        with pytest.raises(DistributionError):
            load_distributed_vector(tmp_path, other_dbasis, name="v")

    def test_ground_state_persists(self, setup, tmp_path):
        # end-to-end: solve, save, load, verify energy unchanged
        serial, dbasis = setup
        dop = repro.DistributedOperator(
            repro.heisenberg_chain(12), dbasis, batch_size=128
        )
        result, _ = repro.lanczos_distributed(
            dop, k=1, tol=1e-10, compute_eigenvectors=True
        )
        ground = result.eigenvectors[0]
        save_distributed_vector(tmp_path, ground, name="gs")
        loaded = load_distributed_vector(tmp_path, dbasis, name="gs")
        from repro.distributed import DistributedVectorSpace

        space = DistributedVectorSpace(dbasis)
        hx = dop.matvec(loaded)
        energy = space.dot(loaded, hx) / space.dot(loaded, loaded)
        assert energy == pytest.approx(result.eigenvalues[0], abs=1e-8)


class TestBasisStatesIO:
    def test_roundtrip_across_cluster_sizes(self, tmp_path):
        from repro.io import load_basis_states, save_basis_states

        group = chain_symmetries(12, momentum=0, parity=0, inversion=0)
        template = SymmetricBasis(group, hamming_weight=6, build=False)
        writer = Cluster(3, laptop_machine(cores=2))
        dbasis3, _ = enumerate_states(writer, template)
        save_basis_states(tmp_path, dbasis3, name="b")

        reader = Cluster(5, laptop_machine(cores=2))
        dbasis5 = load_basis_states(tmp_path, reader, template, name="b")
        assert dbasis5.n_locales == 5
        assert np.array_equal(
            dbasis5.global_states(), dbasis3.global_states()
        )

    def test_loaded_basis_supports_matvec(self, tmp_path, rng):
        from repro.distributed import DistributedVector
        from repro.io import load_basis_states, save_basis_states

        group = chain_symmetries(12, momentum=0, parity=0, inversion=0)
        serial = SymmetricBasis(group, hamming_weight=6)
        template = SymmetricBasis(group, hamming_weight=6, build=False)
        writer = Cluster(2, laptop_machine(cores=2))
        dbasis, _ = enumerate_states(writer, template)
        save_basis_states(tmp_path, dbasis, name="b")

        reader = Cluster(4, laptop_machine(cores=2))
        loaded = load_basis_states(tmp_path, reader, template, name="b")
        dop = repro.DistributedOperator(repro.heisenberg_chain(12), loaded)
        x = rng.standard_normal(serial.dim)
        dx = DistributedVector.from_serial(loaded, serial, x)
        ref = repro.Operator(repro.heisenberg_chain(12), serial).matvec(x)
        assert np.allclose(dop.matvec(dx).to_serial(serial), ref)

    def test_plain_basis_roundtrip(self, tmp_path):
        from repro.io import load_basis_states, save_basis_states

        template = SpinBasis(10, hamming_weight=5)
        writer = Cluster(4, laptop_machine(cores=2))
        dbasis, _ = enumerate_states(writer, template)
        save_basis_states(tmp_path, dbasis)
        loaded = load_basis_states(tmp_path, writer, template)
        for a, b in zip(loaded.parts, dbasis.parts):
            assert np.array_equal(a, b)
