"""Tests for the order-preserving block <-> hashed conversions (Figs. 2-3)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.distributed import BlockArray, block_to_hashed, hashed_to_block, locale_of
from repro.distributed.convert import stable_partition
from repro.errors import DistributionError
from repro.runtime import Cluster, laptop_machine


def make_cluster(n):
    return Cluster(n, laptop_machine(cores=2))


class TestStablePartition:
    def test_groups_and_counts(self):
        values = np.array([10, 20, 30, 40, 50])
        keys = np.array([1, 0, 1, 0, 2])
        out, counts = stable_partition(values, keys, 3)
        assert out.tolist() == [20, 40, 10, 30, 50]
        assert counts.tolist() == [2, 2, 1]

    def test_stability(self, rng):
        values = np.arange(1000)
        keys = rng.integers(0, 4, size=1000)
        out, counts = stable_partition(values, keys, 4)
        start = 0
        for k in range(4):
            chunk = out[start : start + counts[k]]
            # within each key, original order (= increasing values) holds
            assert np.all(np.diff(chunk) > 0)
            start += counts[k]

    def test_empty(self):
        out, counts = stable_partition(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), 3
        )
        assert out.size == 0
        assert counts.tolist() == [0, 0, 0]


class TestBlockToHashed:
    @pytest.mark.parametrize("n_locales", [1, 2, 3, 5])
    @pytest.mark.parametrize("length", [0, 1, 7, 100, 1000])
    def test_partition_complete_and_ordered(self, n_locales, length, rng):
        cluster = make_cluster(n_locales)
        data = rng.permutation(length).astype(np.int64)
        masks_np = locale_of(np.abs(data).astype(np.uint64), n_locales)
        arr = BlockArray.from_global(cluster, data)
        masks = BlockArray.from_global(cluster, masks_np)
        parts, report = block_to_hashed(arr, masks, chunks_per_locale=3)
        # every element lands on its masked locale, in original order
        for dest in range(n_locales):
            expected = data[masks_np == dest]
            assert np.array_equal(parts[dest], expected)
        assert sum(p.size for p in parts) == length

    def test_order_preservation_with_duplicates(self):
        cluster = make_cluster(2)
        data = np.array([5, 5, 5, 5, 5, 5], dtype=np.int64)
        masks = BlockArray.from_global(
            cluster, np.array([0, 1, 0, 1, 0, 1], dtype=np.int64)
        )
        arr = BlockArray.from_global(cluster, data)
        parts, _ = block_to_hashed(arr, masks, chunks_per_locale=2)
        assert parts[0].tolist() == [5, 5, 5]
        assert parts[1].tolist() == [5, 5, 5]

    def test_mask_validation(self):
        cluster = make_cluster(2)
        arr = BlockArray.from_global(cluster, np.arange(4.0))
        bad = BlockArray.from_global(cluster, np.array([0, 1, 2, 0]))
        with pytest.raises(DistributionError):
            block_to_hashed(arr, bad)

    def test_length_mismatch(self):
        cluster = make_cluster(2)
        arr = BlockArray.from_global(cluster, np.arange(4.0))
        masks = BlockArray.from_global(cluster, np.zeros(6, dtype=np.int64))
        with pytest.raises(DistributionError):
            block_to_hashed(arr, masks)

    def test_report_counts_messages(self, rng):
        cluster = make_cluster(3)
        data = rng.standard_normal(90)
        masks = BlockArray.from_global(
            cluster, rng.integers(0, 3, size=90).astype(np.int64)
        )
        arr = BlockArray.from_global(cluster, data)
        _, report = block_to_hashed(arr, masks, chunks_per_locale=2)
        assert report.messages > 0
        assert report.bytes_sent >= 90 * 8
        assert report.elapsed > 0
        assert set(report.phase_elapsed) == {"histogram", "offsets", "put"}


class TestRoundTrip:
    @given(
        n_locales=st.integers(min_value=1, max_value=5),
        length=st.integers(min_value=0, max_value=400),
        seed=st.integers(min_value=0, max_value=2**31),
        chunks=st.integers(min_value=1, max_value=7),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_is_exact(self, n_locales, length, seed, chunks):
        """The paper's Sec. 6.1 verification: block -> hashed -> block is
        the identity, bit for bit."""
        rng = np.random.default_rng(seed)
        cluster = make_cluster(n_locales)
        data = rng.standard_normal(length)
        masks_np = rng.integers(0, n_locales, size=length).astype(np.int64)
        arr = BlockArray.from_global(cluster, data)
        masks = BlockArray.from_global(cluster, masks_np)
        parts, _ = block_to_hashed(arr, masks, chunks_per_locale=chunks)
        back, _ = hashed_to_block(parts, masks, chunks_per_locale=chunks + 1)
        assert np.array_equal(back.to_global(), data)

    def test_roundtrip_uint64(self, rng):
        cluster = make_cluster(4)
        data = rng.integers(0, 1 << 60, size=500, dtype=np.uint64)
        masks_np = locale_of(data, 4)
        arr = BlockArray.from_global(cluster, data)
        masks = BlockArray.from_global(cluster, masks_np)
        parts, _ = block_to_hashed(arr, masks)
        back, _ = hashed_to_block(parts, masks)
        assert np.array_equal(back.to_global(), data)

    def test_roundtrip_2d(self, rng):
        # The paper's implementation handles 2-D arrays (blocks of Krylov
        # vectors); rows travel together, order is preserved per row.
        cluster = make_cluster(3)
        data = rng.standard_normal((120, 5))
        masks_np = rng.integers(0, 3, size=120).astype(np.int64)
        arr = BlockArray.from_global(cluster, data)
        masks = BlockArray.from_global(cluster, masks_np)
        parts, _ = block_to_hashed(arr, masks, chunks_per_locale=4)
        for dest in range(3):
            assert np.array_equal(parts[dest], data[masks_np == dest])
        back, _ = hashed_to_block(parts, masks, chunks_per_locale=2)
        assert np.array_equal(back.to_global(), data)

    def test_2d_message_bytes_scale_with_width(self, rng):
        cluster = make_cluster(2)
        masks_np = rng.integers(0, 2, size=60).astype(np.int64)
        masks = BlockArray.from_global(cluster, masks_np)
        narrow = BlockArray.from_global(cluster, rng.standard_normal((60, 1)))
        wide = BlockArray.from_global(cluster, rng.standard_normal((60, 8)))
        _, r1 = block_to_hashed(narrow, masks, chunks_per_locale=2)
        _, r8 = block_to_hashed(wide, masks, chunks_per_locale=2)
        assert r8.bytes_sent > 4 * r1.bytes_sent

    def test_hashed_to_block_validation(self):
        cluster = make_cluster(2)
        masks = BlockArray.from_global(cluster, np.zeros(4, dtype=np.int64))
        with pytest.raises(DistributionError):
            hashed_to_block([np.zeros(1)], masks)
        with pytest.raises(DistributionError):
            hashed_to_block([np.zeros(1), np.zeros(1)], masks)
