"""Tests for the SPINPACK-like bulk-synchronous baseline."""

import numpy as np
import pytest

import repro
from repro.baselines import SpinpackBasis, SpinpackOperator
from repro.basis import SpinBasis, SymmetricBasis
from repro.errors import DistributionError
from repro.runtime import Cluster, laptop_machine
from repro.symmetry import chain_symmetries


def make(n=12, w=6, n_locales=3, sector=dict(momentum=0, parity=0, inversion=0)):
    group = chain_symmetries(n, **sector)
    serial = SymmetricBasis(group, hamming_weight=w)
    cluster = Cluster(n_locales, laptop_machine(cores=4))
    basis = SpinpackBasis.from_serial(cluster, serial)
    return serial, basis


class TestSpinpackBasis:
    def test_parts_cover_serial_states(self):
        serial, basis = make()
        assert np.array_equal(np.concatenate(basis.parts), serial.states)
        assert basis.dim == serial.dim

    def test_rank_of_matches_ownership(self):
        serial, basis = make()
        for locale, part in enumerate(basis.parts):
            assert np.all(basis.rank_of(part) == locale)

    def test_vector_roundtrip(self, rng):
        serial, basis = make()
        x = rng.standard_normal(serial.dim)
        v = basis.vector_from_serial(serial, x)
        assert np.allclose(basis.vector_to_serial(serial, v), x)

    def test_rejects_unsorted_states(self):
        serial, _ = make(n=8, w=4)
        cluster = Cluster(2, laptop_machine())
        states = serial.states[::-1].copy()
        with pytest.raises(DistributionError):
            SpinpackBasis(cluster, serial, states)

    def test_scales_present_for_symmetric_basis(self):
        _, basis = make()
        assert basis.scales is not None

    def test_no_scales_for_plain_basis(self):
        serial = SpinBasis(8, hamming_weight=4)
        cluster = Cluster(2, laptop_machine())
        basis = SpinpackBasis.from_serial(cluster, serial)
        assert basis.scales is None


class TestSpinpackMatvec:
    @pytest.mark.parametrize("n_locales", [1, 2, 4])
    def test_matches_serial(self, n_locales, rng):
        serial, basis = make(n_locales=n_locales)
        expr = repro.heisenberg_chain(12)
        op = SpinpackOperator(expr, basis, batch_size=32)
        serial_op = repro.Operator(expr, serial)
        x = rng.standard_normal(serial.dim)
        y, report = op.matvec(basis.vector_from_serial(serial, x))
        assert np.allclose(
            basis.vector_to_serial(serial, y), serial_op.matvec(x)
        )
        assert report.elapsed > 0

    def test_u1_basis(self, rng):
        serial = SpinBasis(10, hamming_weight=5)
        cluster = Cluster(3, laptop_machine(cores=4))
        basis = SpinpackBasis.from_serial(cluster, serial)
        expr = repro.xxz_chain(10, jz=0.5)
        op = SpinpackOperator(expr, basis, batch_size=16)
        serial_op = repro.Operator(expr, serial)
        x = rng.standard_normal(serial.dim)
        y, _ = op.matvec(basis.vector_from_serial(serial, x))
        assert np.allclose(basis.vector_to_serial(serial, y), serial_op.matvec(x))

    def test_phases_are_bulk_synchronous(self, rng):
        serial, basis = make()
        op = SpinpackOperator(repro.heisenberg_chain(12), basis, batch_size=16)
        x = basis.vector_from_serial(serial, rng.standard_normal(serial.dim))
        _, report = op.matvec(x)
        # elapsed is the *sum* of the synchronized phases (no overlap)
        total = sum(report.phase_elapsed.values())
        assert report.elapsed == pytest.approx(total)
        assert set(report.phase_elapsed) >= {"generate", "alltoallv", "accumulate"}

    def test_kernel_slowdown_scales_compute(self, rng):
        serial, basis = make()
        x = basis.vector_from_serial(serial, rng.standard_normal(serial.dim))
        fast = SpinpackOperator(
            repro.heisenberg_chain(12), basis, kernel_slowdown=1.0
        )
        slow = SpinpackOperator(
            repro.heisenberg_chain(12), basis, kernel_slowdown=2.0
        )
        _, r_fast = fast.matvec(x)
        _, r_slow = slow.matvec(x)
        assert (
            r_slow.phase_elapsed["generate"]
            > 1.9 * r_fast.phase_elapsed["generate"]
        )

    def test_total_sim_time_accumulates(self, rng):
        serial, basis = make()
        op = SpinpackOperator(repro.heisenberg_chain(12), basis)
        x = basis.vector_from_serial(serial, rng.standard_normal(serial.dim))
        op.matvec(x)
        t1 = op.total_sim_time
        op.matvec(x)
        assert op.total_sim_time > t1

    def test_batch_size_does_not_change_result(self, rng):
        serial, basis = make()
        expr = repro.heisenberg_chain(12)
        x = basis.vector_from_serial(serial, rng.standard_normal(serial.dim))
        y1, _ = SpinpackOperator(expr, basis, batch_size=8).matvec(x)
        y2, _ = SpinpackOperator(expr, basis, batch_size=1024).matvec(x)
        for a, b in zip(y1.blocks, y2.blocks):
            assert np.allclose(a, b)
