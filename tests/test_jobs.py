"""Job-scoped cost attribution (``repro.telemetry.jobs``).

The load-bearing property is **conservation**: with several jobs
interleaved on one cluster, every per-job mirror counter must sum to
exactly the global counter — integer counters exactly, simulated-seconds
to 1e-9 relative — for all three distributed matvec variants, including
warm plan-cache replays.  The fan-out instruments make this true by
construction; these tests make sure it stays true.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import telemetry
from repro.basis import SymmetricBasis
from repro.distributed import (
    DistributedOperator,
    DistributedVector,
    enumerate_states,
)
from repro.runtime import Cluster, laptop_machine
from repro.symmetry import chain_symmetries
from repro.telemetry import (
    CostLedger,
    MetricsRegistry,
    Telemetry,
    current_job,
    job,
    ndarray_bytes,
)
from repro.telemetry.analysis import aggregate_job_costs

METHODS = ["naive", "batched", "pc"]

#: integer-valued counter families that must conserve exactly
INT_COUNTERS = ["matvec.bytes", "matvec.messages", "plan.hits", "plan.misses"]


@pytest.fixture(scope="module")
def dist_setup():
    group = chain_symmetries(12, momentum=0, parity=0, inversion=0)
    template = SymmetricBasis(group, hamming_weight=6, build=False)
    cluster = Cluster(3, laptop_machine(cores=4))
    dbasis, _ = enumerate_states(cluster, template, chunks_per_core=3)
    expr = repro.heisenberg_chain(12)
    return dbasis, expr


def _run_interleaved(dbasis, expr, method, n_jobs=3, rounds=2):
    """``n_jobs`` jobs, each doing ``rounds`` matvecs, interleaved so the
    plan cache is cold for the first job's first round and warm after."""
    tele = Telemetry.enabled(trace=True, metrics=True)
    with telemetry.use(tele):
        dop = DistributedOperator(expr, dbasis, method=method, batch_size=64)
        contexts = []
        for j in range(n_jobs):
            with job(f"{method}-job-{j}", tenant=f"t{j}") as ctx:
                contexts.append(ctx)
        rng = np.random.default_rng(7)
        for _ in range(rounds):
            for ctx in contexts:
                with job(ctx):  # re-enter the same accounting scope
                    x = DistributedVector.full_random(
                        dbasis, seed=rng.integers(2**31)
                    )
                    dop.matvec(x)
    return tele, contexts


class TestConservation:
    @pytest.mark.parametrize("method", METHODS)
    def test_wire_counters_conserve_exactly(self, dist_setup, method):
        dbasis, expr = dist_setup
        tele, contexts = _run_interleaved(dbasis, expr, method)
        for name in INT_COUNTERS:
            total = tele.metrics.counter_total(name)
            per_job = sum(
                ctx.metrics.counter_total(name) for ctx in contexts
            )
            assert per_job == total, name
        # The runs were all inside job scopes, so nothing may leak into
        # an unattributed residual; and the work actually happened.
        assert tele.metrics.counter_total("matvec.bytes") > 0
        assert tele.metrics.counter_total("plan.hits") > 0  # warm rounds
        assert tele.metrics.counter_total("plan.misses") > 0  # cold round

    @pytest.mark.parametrize("method", METHODS)
    def test_sim_seconds_conserve(self, dist_setup, method):
        dbasis, expr = dist_setup
        tele, contexts = _run_interleaved(dbasis, expr, method)
        total = tele.metrics.counter_total("sim.seconds")
        per_job = sum(
            ctx.metrics.counter_total("sim.seconds") for ctx in contexts
        )
        assert per_job == pytest.approx(total, rel=1e-9)
        # Every global sim.seconds emission is paired with a ledger
        # charge, so the ledgers agree with the mirrors too.
        for ctx in contexts:
            assert ctx.ledger.total_sim_seconds == pytest.approx(
                ctx.metrics.counter_total("sim.seconds"), rel=1e-9
            )

    @pytest.mark.parametrize("method", METHODS)
    def test_ledger_wire_totals_match_global(self, dist_setup, method):
        dbasis, expr = dist_setup
        tele, contexts = _run_interleaved(dbasis, expr, method)
        assert sum(ctx.ledger.wire_bytes for ctx in contexts) == (
            tele.metrics.counter_total("matvec.bytes")
        )
        assert sum(ctx.ledger.wire_messages for ctx in contexts) == (
            tele.metrics.counter_total("matvec.messages")
        )

    def test_jobs_share_is_disjoint_and_attributed(self, dist_setup):
        """Each job's mirror holds only its own traffic: a job that did
        twice the matvecs accounts for (close to) twice the bytes."""
        dbasis, expr = dist_setup
        tele = Telemetry.enabled(trace=False, metrics=True)
        with telemetry.use(tele):
            dop = DistributedOperator(
                expr, dbasis, method="batched", batch_size=64
            )
            x = DistributedVector.full_random(dbasis, seed=1)
            with job("light") as light:
                dop.matvec(x)
            with job("heavy") as heavy:
                dop.matvec(x)
                dop.matvec(x)
        light_bytes = light.metrics.counter_total("matvec.bytes")
        heavy_bytes = heavy.metrics.counter_total("matvec.bytes")
        assert light_bytes > 0
        assert heavy_bytes == 2 * light_bytes
        assert light_bytes + heavy_bytes == tele.metrics.counter_total(
            "matvec.bytes"
        )


class TestJobScope:
    def test_no_job_outside_scope(self):
        assert current_job() is None
        with job("a") as ctx:
            assert current_job() is ctx
        assert current_job() is None

    def test_nested_scopes_restore_outer(self):
        with job("outer") as outer:
            with job("inner") as inner:
                assert current_job() is inner
            assert current_job() is outer

    def test_auto_ids_are_distinct(self):
        with job() as a:
            pass
        with job() as b:
            pass
        assert a.job_id != b.job_id

    def test_reentry_accumulates_into_same_ledger(self):
        with job("resumable") as ctx:
            ctx.ledger.charge("phase", 1.0)
        with job(ctx):
            assert current_job() is ctx
            ctx.ledger.charge("phase", 2.0)
        assert ctx.ledger.sim_seconds["phase"] == pytest.approx(3.0)

    def test_registered_in_telemetry_bundle(self):
        tele = Telemetry.enabled(trace=False, metrics=True)
        with telemetry.use(tele):
            with job("registered") as ctx:
                pass
        assert tele.jobs["registered"] is ctx

    def test_fresh_context_same_id_gets_fresh_mirror(self):
        """Reusing a job *id* (not a context) must not write into the
        previous context's mirror registry (the fan-out cache is
        identity-checked)."""
        tele = Telemetry.enabled(trace=False, metrics=True)
        with telemetry.use(tele):
            with job("reused-id") as first:
                tele.metrics.counter("events").inc(3)
            with job("reused-id") as second:
                tele.metrics.counter("events").inc(5)
        assert first.metrics.counter_total("events") == 3
        assert second.metrics.counter_total("events") == 5
        assert tele.metrics.counter_total("events") == 8


class TestLedger:
    def test_charge_accumulates_by_phase(self):
        ledger = CostLedger()
        ledger.charge("matvec", 1.5)
        ledger.charge("matvec", 0.5)
        ledger.charge("reductions", 1.0)
        assert ledger.sim_seconds == {"matvec": 2.0, "reductions": 1.0}
        assert ledger.total_sim_seconds == pytest.approx(3.0)

    def test_peak_array_bytes_is_high_water_mark(self):
        ledger = CostLedger()
        ledger.observe_array_bytes(100)
        ledger.observe_array_bytes(50)
        assert ledger.peak_array_bytes == 100

    def test_snapshot_and_table(self):
        ledger = CostLedger(_metrics=MetricsRegistry(fanout=False))
        ledger.charge("matvec", 2.0)
        ledger._metrics.counter("matvec.bytes").inc(4096)
        ledger._metrics.counter("plan.hits").inc(3)
        snap = ledger.snapshot()
        assert snap["wire_bytes"] == 4096
        assert snap["plan_hits"] == 3
        assert snap["total_sim_seconds"] == pytest.approx(2.0)
        assert "wire_bytes" in ledger.table()

    def test_ndarray_bytes(self):
        a = np.zeros(10, dtype=np.float64)
        b = np.zeros((2, 3), dtype=np.complex128)
        assert ndarray_bytes(a) == 80
        assert ndarray_bytes(a, b) == 80 + 96
        assert ndarray_bytes(None, [a, None, b]) == 80 + 96
        assert ndarray_bytes() == 0

    def test_ndarray_bytes_distributed_vector(self, dist_setup):
        dbasis, _ = dist_setup
        x = DistributedVector.full_random(dbasis, seed=0)
        assert ndarray_bytes(x) == sum(int(p.nbytes) for p in x.parts)


class TestReportAttribution:
    def test_report_stamped_with_job(self, dist_setup):
        dbasis, expr = dist_setup
        tele = Telemetry.enabled(trace=False, metrics=True)
        with telemetry.use(tele):
            dop = DistributedOperator(expr, dbasis, method="pc")
            x = DistributedVector.full_random(dbasis, seed=2)
            with job("stamped", tenant="acme") as ctx:
                dop.matvec(x)
            report = dop.last_report
        assert report.job_id == "stamped"
        assert report.job_costs is not None
        assert report.job_costs["total_sim_seconds"] > 0
        assert report.job_costs["peak_array_bytes"] > 0
        assert "stamped" in report.summary()
        assert ctx.ledger.peak_array_bytes > 0

    def test_lanczos_distributed_charges_reductions(self, dist_setup):
        dbasis, expr = dist_setup
        from repro.linalg import lanczos_distributed

        tele = Telemetry.enabled(trace=False, metrics=True)
        with telemetry.use(tele):
            dop = DistributedOperator(expr, dbasis, method="batched")
            with job("eigensolve") as ctx:
                result, sim_seconds = lanczos_distributed(
                    dop, k=1, max_iter=12, raise_on_no_convergence=False
                )
        assert "lanczos.reductions" in ctx.ledger.sim_seconds
        assert any(p.startswith("matvec") for p in ctx.ledger.sim_seconds)
        # The ledger's simulated time covers the whole solve.
        assert ctx.ledger.total_sim_seconds == pytest.approx(
            sim_seconds, rel=1e-9
        )
        assert result.progress  # per-iteration series rode along


class TestTraceAttribution:
    def test_spans_carry_job_and_aggregate(self, dist_setup):
        dbasis, expr = dist_setup
        tele = Telemetry.enabled(trace=True, metrics=True)
        with telemetry.use(tele):
            dop = DistributedOperator(expr, dbasis, method="pc")
            xa = DistributedVector.full_random(dbasis, seed=3)
            with job("alpha", tenant="a", workload="chain"):
                dop.matvec(xa)
            with job("beta", tenant="b", workload="chain"):
                dop.matvec(xa)
        rows = aggregate_job_costs(tele.trace)
        assert set(rows) >= {"alpha", "beta"}
        assert rows["alpha"]["tenant"] == "a"
        assert rows["alpha"]["spans"] > 0
        assert rows["beta"]["wire_bytes"] > 0
        # Span-harvested wire bytes agree with the mirror registries.
        total_bytes = sum(
            rows[j]["wire_bytes"] for j in ("alpha", "beta")
        )
        assert total_bytes == tele.metrics.counter_total("matvec.bytes")
