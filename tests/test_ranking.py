"""Tests for the stateToIndex ranking strategies."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.basis import CombinatorialRanker, SortedRanker, binomial_table
from repro.bits import states_with_weight
from repro.errors import BasisError


class TestBinomialTable:
    def test_values(self):
        t = binomial_table(10)
        assert t[10, 5] == 252
        assert t[0, 0] == 1
        assert t[7, 9] == 0

    def test_row_sums_are_powers_of_two(self):
        t = binomial_table(20)
        for m in range(21):
            assert t[m].sum() == 1 << m

    def test_max_width(self):
        t = binomial_table(63)
        from math import comb

        assert int(t[63, 31]) == comb(63, 31)

    def test_rejects_too_wide(self):
        with pytest.raises(ValueError):
            binomial_table(64)


class TestSortedRanker:
    def test_rank_roundtrip(self):
        states = np.array([2, 5, 9, 17], dtype=np.uint64)
        ranker = SortedRanker(states)
        assert ranker.rank(states).tolist() == [0, 1, 2, 3]

    def test_rank_shuffled_queries(self, rng):
        states = np.sort(
            rng.choice(1 << 20, size=500, replace=False).astype(np.uint64)
        )
        ranker = SortedRanker(states)
        perm = rng.permutation(500)
        assert np.array_equal(ranker.rank(states[perm]), perm)

    def test_missing_state_raises(self):
        ranker = SortedRanker(np.array([1, 3], dtype=np.uint64))
        with pytest.raises(BasisError):
            ranker.rank(np.array([2], dtype=np.uint64))

    def test_missing_past_end_raises(self):
        ranker = SortedRanker(np.array([1, 3], dtype=np.uint64))
        with pytest.raises(BasisError):
            ranker.rank(np.array([4], dtype=np.uint64))

    def test_try_rank(self):
        ranker = SortedRanker(np.array([1, 3, 7], dtype=np.uint64))
        idx, found = ranker.try_rank(np.array([3, 4, 7], dtype=np.uint64))
        assert found.tolist() == [True, False, True]
        assert idx[0] == 1 and idx[2] == 2

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            SortedRanker(np.array([3, 1], dtype=np.uint64))

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            SortedRanker(np.array([1, 1], dtype=np.uint64))

    def test_empty(self):
        ranker = SortedRanker(np.empty(0, dtype=np.uint64))
        _, found = ranker.try_rank(np.array([1], dtype=np.uint64))
        assert not found[0]


class TestCombinatorialRanker:
    @pytest.mark.parametrize("n,w", [(4, 2), (8, 3), (12, 6), (10, 0), (10, 10)])
    def test_matches_sorted_enumeration(self, n, w):
        states = states_with_weight(n, w)
        ranker = CombinatorialRanker(n, w)
        assert ranker.size == states.size
        assert np.array_equal(ranker.rank(states), np.arange(states.size))

    @given(
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=0, max_value=20),
    )
    def test_unrank_rank_roundtrip(self, n, w):
        if w > n:
            return
        ranker = CombinatorialRanker(n, w)
        indices = np.arange(ranker.size, dtype=np.int64)
        assert np.array_equal(ranker.rank(ranker.unrank(indices)), indices)

    def test_unrank_matches_enumeration(self):
        n, w = 10, 4
        ranker = CombinatorialRanker(n, w)
        assert np.array_equal(
            ranker.unrank(np.arange(ranker.size)), states_with_weight(n, w)
        )

    def test_wrong_weight_raises(self):
        ranker = CombinatorialRanker(6, 3)
        with pytest.raises(BasisError):
            ranker.rank(np.array([0b11], dtype=np.uint64))

    def test_unrank_out_of_range(self):
        ranker = CombinatorialRanker(6, 3)
        with pytest.raises(BasisError):
            ranker.unrank(np.array([ranker.size]))

    def test_agrees_with_sorted_ranker(self, rng):
        n, w = 16, 8
        states = states_with_weight(n, w)
        sorted_ranker = SortedRanker(states)
        comb_ranker = CombinatorialRanker(n, w)
        sample = states[rng.choice(states.size, size=200, replace=False)]
        assert np.array_equal(
            sorted_ranker.rank(sample), comb_ranker.rank(sample)
        )
