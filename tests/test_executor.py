"""Backend-conformance suite for the executor abstraction.

Every test in :class:`TestConformance` drives the *same* generator
protocol code through both executors — the discrete-event simulator and
the real thread backend — and asserts the same observable behaviour:
FIFO queue ordering, flag handshake semantics (including timed waits
resuming with ``False``), barrier rendezvous, atomic counters, resource
capacity limits, and RemoteBuffer-style buffer-reuse handoff.  The
protocol code never mentions a backend; that is the point of the
abstraction.

Thread-only behaviour — prompt typed failure instead of a hang, map
fan-out error handling — is covered separately.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.errors import BackendError
from repro.runtime import Cluster, laptop_machine
from repro.runtime.events import Acquire, Pop, Timeout, WaitFlag
from repro.runtime.executor import (
    BACKENDS,
    SimExecutor,
    ThreadExecutor,
    get_executor,
)


@pytest.fixture(params=["sim", "threads"])
def ex(request):
    if request.param == "sim":
        return SimExecutor()
    return ThreadExecutor()


class TestConformance:
    def test_queue_is_fifo(self, ex):
        queue = ex.queue(name="work")
        seen = []

        def producer():
            for item in range(10):
                queue.push(item)
                yield Timeout(1e-6)

        def consumer():
            for _ in range(10):
                item = yield Pop(queue)
                seen.append(item)

        ex.spawn(producer(), name="producer")
        ex.spawn(consumer(), name="consumer")
        ex.run()
        assert seen == list(range(10))

    def test_flag_handshake_alternates(self, ex):
        """Two processes ping-pong through a pair of flags; the observed
        event order must strictly alternate on every backend."""
        ping = ex.flag(False, name="ping")
        pong = ex.flag(True, name="pong")
        events = []

        def pinger():
            for i in range(5):
                ok = yield WaitFlag(pong, True)
                assert ok is True
                pong.set(False)
                with ex.mutex:
                    events.append(("ping", i))
                ping.set(True)

        def ponger():
            for i in range(5):
                ok = yield WaitFlag(ping, True)
                assert ok is True
                ping.set(False)
                with ex.mutex:
                    events.append(("pong", i))
                pong.set(True)

        ex.spawn(pinger(), name="pinger")
        ex.spawn(ponger(), name="ponger")
        ex.run()
        assert events == [
            (side, i) for i in range(5) for side in ("ping", "pong")
        ]

    def test_timed_flag_wait_resumes_with_false(self, ex):
        """A WaitFlag with a timeout that expires resumes with ``False``
        (the retransmit-timer contract of the resilient protocols)."""
        flag = ex.flag(False, name="never-set")
        results = []

        def waiter():
            ok = yield WaitFlag(flag, True, timeout=0.01)
            results.append(ok)

        ex.spawn(waiter(), name="waiter")
        ex.run()
        assert results == [False]

    def test_timed_flag_wait_resumes_with_true_when_set(self, ex):
        flag = ex.flag(False, name="set-late")
        results = []

        def setter():
            yield Timeout(1e-4)
            flag.set(True)

        def waiter():
            ok = yield WaitFlag(flag, True, timeout=30.0)
            results.append(ok)

        ex.spawn(setter(), name="setter")
        ex.spawn(waiter(), name="waiter")
        ex.run()
        assert results == [True]

    def test_barrier_holds_back_every_party(self, ex):
        parties = 4
        barrier = ex.barrier(parties)
        arrived = ex.counter(0)
        after = []

        def worker(i):
            arrived.add(1)
            yield from barrier.arrive()
            # No party may pass the barrier before all have arrived.
            with ex.mutex:
                after.append((i, arrived.get()))

        for i in range(parties):
            ex.spawn(worker(i), name=f"worker-{i}")
        ex.run()
        assert sorted(i for i, _ in after) == list(range(parties))
        assert all(count == parties for _, count in after)

    def test_counter_add_is_atomic_and_returns_new_value(self, ex):
        counter = ex.counter(0)
        claimed = []

        def worker():
            local = []
            for _ in range(200):
                local.append(counter.add(1) - 1)
            with ex.mutex:
                claimed.extend(local)
            yield Timeout(0.0)

        for i in range(4):
            ex.spawn(worker(), name=f"adder-{i}")
        ex.run()
        # 800 adds -> 800 distinct claimed slots, no lost updates.
        assert counter.get() == 800
        assert sorted(claimed) == list(range(800))

    def test_resource_capacity_is_enforced(self, ex):
        resource = ex.resource(capacity=2, name="nic")
        holders = ex.counter(0)
        high_water = []

        def worker():
            for _ in range(5):
                yield Acquire(resource)
                depth = holders.add(1)
                with ex.mutex:
                    high_water.append(depth)
                yield Timeout(1e-5)
                holders.add(-1)
                resource.release()

        for i in range(6):
            ex.spawn(worker(), name=f"user-{i}")
        ex.run()
        assert len(high_water) == 30
        assert max(high_water) <= 2

    def test_buffer_reuse_handoff(self, ex):
        """The RemoteBuffer protocol shape: one reusable slot, a ``full``
        flag in each direction, strict item ordering, no lost writes."""
        full = ex.flag(False, name="full")
        slot = [None]
        received = []

        def producer():
            for item in range(25):
                ok = yield WaitFlag(full, False)
                assert ok is True
                slot[0] = item
                full.set(True)

        def consumer():
            for _ in range(25):
                ok = yield WaitFlag(full, True)
                assert ok is True
                received.append(slot[0])
                full.set(False)

        ex.spawn(producer(), name="producer")
        ex.spawn(consumer(), name="consumer")
        ex.run()
        assert received == list(range(25))

    def test_map_preserves_submission_order(self, ex):
        thunks = [lambda i=i: i * i for i in range(20)]
        assert ex.map(thunks, locales=[i % 4 for i in range(20)]) == [
            i * i for i in range(20)
        ]

    def test_call_later_effect_is_visible_after_run(self, ex):
        flag = ex.flag(False, name="late")
        results = []

        def waiter():
            ok = yield WaitFlag(flag, True)
            results.append(ok)

        ex.spawn(waiter(), name="waiter")
        ex.call_later(1e-4, lambda: flag.set(True))
        ex.run()
        assert results == [True]


class TestThreadFailureSemantics:
    """A raising worker must produce a typed error, promptly — not a hang."""

    def test_worker_exception_becomes_backend_error_with_locale(self):
        ex = ThreadExecutor()
        never = ex.flag(False, name="never")

        def victim():
            # Blocked forever unless the failure cancels it.
            yield WaitFlag(never, True)

        def failing():
            yield Timeout(0.0)
            raise RuntimeError("injected kaboom")

        ex.spawn(victim(), name="victim", locale=0)
        ex.spawn(failing(), name="failing", locale=3)
        t0 = time.perf_counter()
        with pytest.raises(BackendError) as excinfo:
            ex.run()
        assert time.perf_counter() - t0 < 5.0, "failure should not hang"
        assert "locale 3" in str(excinfo.value)
        assert excinfo.value.locale == 3
        assert isinstance(excinfo.value.__cause__, RuntimeError)

    def test_map_failure_names_locale_and_cancels_rest(self):
        ex = ThreadExecutor(n_workers=2)

        def boom():
            raise ValueError("bad chunk")

        thunks = [lambda: 1, boom] + [lambda: 2] * 20
        with pytest.raises(BackendError) as excinfo:
            ex.map(thunks, locales=[0, 1] + [2] * 20)
        assert "locale 1" in str(excinfo.value)
        assert excinfo.value.locale == 1
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_watchdog_turns_deadlock_into_typed_error(self):
        ex = ThreadExecutor()
        ex.watchdog_seconds = 0.3
        never = ex.flag(False, name="stuck-flag")

        def stuck():
            yield WaitFlag(never, True)

        ex.spawn(stuck(), name="stuck-worker")
        with pytest.raises(BackendError, match="deadlock"):
            ex.run()


class TestBackendSelection:
    def test_cluster_default_backend_is_sim(self):
        cluster = Cluster(2, laptop_machine())
        assert cluster.backend == "sim"
        assert isinstance(get_executor(cluster), SimExecutor)

    def test_cluster_threads_backend(self):
        cluster = Cluster(2, laptop_machine(), backend="threads")
        assert cluster.backend == "threads"
        assert isinstance(get_executor(cluster), ThreadExecutor)

    def test_unknown_backend_rejected(self):
        with pytest.raises(BackendError, match="mpi"):
            Cluster(2, laptop_machine(), backend="mpi")

    def test_faults_accepted_on_threads(self):
        from repro.resilience import FaultPlan, ResilienceConfig

        cluster = Cluster(
            2,
            laptop_machine(),
            faults=FaultPlan(seed=1, drop=0.5),
            resilience=ResilienceConfig(
                watchdog_timeout=7.5, max_worker_restarts=3
            ),
            backend="threads",
        )
        ex = get_executor(cluster, faults=cluster.faults)
        assert isinstance(ex, ThreadExecutor)
        # Supervision knobs flow from cluster.resilience into the executor.
        assert ex.watchdog_seconds == 7.5
        assert ex._max_worker_restarts == 3

    def test_backends_tuple_is_the_contract(self):
        assert BACKENDS == ("sim", "threads")
        assert SimExecutor.name == "sim" and not SimExecutor.wall_clock
        assert ThreadExecutor.name == "threads" and ThreadExecutor.wall_clock


class TestProfilingConformance:
    """Both backends emit the same span and metric *names* per primitive.

    The simulator observes modelled durations, the threads backend
    measured ones; what must match is the vocabulary — span names on the
    locale tracks and ``executor.*`` metric families — so the analysis
    layer and ``repro-inspect calibrate`` can align the two.  The real
    sleeps below only matter on the threads backend (they force the
    waiter to genuinely block); on the simulator the same blocking comes
    from the modelled ``Timeout`` delays.
    """

    #: metric families both backends must produce for this protocol
    COMMON_FAMILIES = {
        "executor.flag_wait_seconds",
        "executor.queue_wait_seconds",
        "executor.resource_wait_seconds",
        "executor.resource_hold_seconds",
        "executor.queue_depth",
        "executor.queue_depth_max",
        "executor.worker_busy_seconds",
        "executor.worker_blocked_seconds",
        "executor.counter_adds",
    }
    #: span names both backends must stamp on the locale tracks
    SPAN_NAMES = {
        "produce", "arm", "hold", "consume", "stall", "idle", "wait:port",
    }

    @staticmethod
    def _drive(ex):
        queue = ex.queue(name="work")
        flag = ex.flag(False, name="go")
        port = ex.resource(1, name="port")
        count = ex.counter(0)

        def holder():
            yield Acquire(port)
            time.sleep(0.03)
            yield Timeout(5e-3, label="hold")
            port.release()

        def producer():
            time.sleep(0.01)
            yield Timeout(2e-3, label="produce")
            queue.push(7)
            queue.push(8)  # lands in the deque: samples queue depth

        def setter():
            time.sleep(0.02)
            yield Timeout(3e-3, label="arm")
            flag.set(True)

        def waiter():
            item = yield Pop(queue)
            ok = yield WaitFlag(flag, True)
            assert ok is True
            yield Acquire(port)
            yield Timeout(1e-3, label="consume")
            port.release()
            count.add(item)

        ex.spawn(holder(), name="holder", track=("locale0", "holder"), locale=0)
        ex.spawn(waiter(), name="waiter", track=("locale0", "waiter"), locale=0)
        ex.spawn(setter(), name="setter", track=("locale0", "setter"), locale=0)
        ex.spawn(
            producer(), name="producer", track=("locale0", "producer"),
            locale=0,
        )
        ex.run()
        assert count.get() == 7

    def _run(self, backend):
        from repro.telemetry import MetricsRegistry, TraceRecorder
        from repro.telemetry.profile import ExecutorProfiler

        trace = TraceRecorder()
        metrics = MetricsRegistry()
        if backend == "sim":
            profile = ExecutorProfiler(trace=None, metrics=metrics)
            ex = SimExecutor(trace=trace, profile=profile)
        else:
            profile = ExecutorProfiler(trace=trace, metrics=metrics, wall=True)
            ex = ThreadExecutor(profile=profile)
        self._drive(ex)
        return trace, metrics

    def test_same_metric_families_on_both_backends(self):
        results = {b: self._run(b) for b in ("sim", "threads")}
        families = {}
        for backend, (_, metrics) in results.items():
            snap = metrics.snapshot()
            families[backend] = {
                name
                for source in (snap.counters, snap.gauges, snap.histograms)
                for (name, _) in source
                if name.startswith("executor.")
            }
        for backend in ("sim", "threads"):
            missing = self.COMMON_FAMILIES - families[backend]
            assert not missing, f"{backend} backend missing {missing}"
        # Lock families are threads-only by construction: the simulator's
        # single-threaded lock() is a no-op context that cannot contend.
        assert "executor.lock_wait_seconds" not in families["sim"]

    def test_same_span_names_on_both_backends(self):
        for backend in ("sim", "threads"):
            trace, _ = self._run(backend)
            names = {
                event["name"]
                for event in trace.to_chrome()["traceEvents"]
                if event.get("ph") == "X"
            }
            missing = self.SPAN_NAMES - names
            assert not missing, f"{backend} backend missing spans {missing}"

    def test_clock_domain_marks_the_backend(self):
        sim_trace, _ = self._run("sim")
        wall_trace, _ = self._run("threads")
        assert sim_trace.to_chrome()["clock"] == "sim"
        assert wall_trace.to_chrome()["clock"] == "wall"

    def test_lock_contention_measured_on_threads(self):
        from repro.telemetry import MetricsRegistry
        from repro.telemetry.profile import ExecutorProfiler

        metrics = MetricsRegistry()
        ex = ThreadExecutor(
            profile=ExecutorProfiler(metrics=metrics, wall=True)
        )
        lock = ex.lock("accum")

        def bumper():
            with lock:
                time.sleep(0.005)
            yield Timeout(1e-6)

        for i in range(3):
            ex.spawn(bumper(), name=f"bump{i}")
        ex.run()
        snap = ex.profile.metrics.snapshot()
        waits = {
            labels: stats
            for (name, labels), stats in snap.histograms.items()
            if name == "executor.lock_wait_seconds"
        }
        holds = {
            labels: stats
            for (name, labels), stats in snap.histograms.items()
            if name == "executor.lock_hold_seconds"
        }
        assert (("lock", "accum"),) in waits
        assert (("lock", "accum"),) in holds
        hold = holds[(("lock", "accum"),)]
        assert hold["count"] == 3
        assert hold["sum"] >= 3 * 0.004

    def test_partial_trace_flushed_on_worker_failure(self):
        from repro.telemetry import MetricsRegistry, TraceRecorder
        from repro.telemetry.profile import ExecutorProfiler

        trace = TraceRecorder()
        ex = ThreadExecutor(
            profile=ExecutorProfiler(
                trace=trace, metrics=MetricsRegistry(), wall=True
            )
        )

        def worker():
            yield Timeout(1e-3, label="before-crash")
            raise RuntimeError("boom")

        ex.spawn(worker(), name="worker", track=("locale0", "w0"), locale=0)
        with pytest.raises(BackendError, match="boom"):
            ex.run()
        names = [
            event["name"]
            for event in trace.to_chrome()["traceEvents"]
            if event.get("ph") == "X"
        ]
        assert "before-crash" in names
        assert trace.to_chrome()["clock"] == "wall"

    def test_partial_trace_flushed_on_watchdog_deadlock(self):
        from repro.telemetry import MetricsRegistry, TraceRecorder
        from repro.telemetry.profile import ExecutorProfiler

        trace = TraceRecorder()
        ex = ThreadExecutor(
            profile=ExecutorProfiler(
                trace=trace, metrics=MetricsRegistry(), wall=True
            )
        )
        ex.watchdog_seconds = 0.3
        flag = ex.flag(False, name="never")

        def stuck():
            yield Timeout(1e-3, label="pre-deadlock")
            yield WaitFlag(flag, True)

        ex.spawn(stuck(), name="stuck", track=("locale0", "w0"), locale=0)
        with pytest.raises(BackendError, match="deadlock"):
            ex.run()
        names = [
            event["name"]
            for event in trace.to_chrome()["traceEvents"]
            if event.get("ph") == "X"
        ]
        assert "pre-deadlock" in names
