"""Structured JSON-lines logging (``repro.telemetry.log``).

Records must be strict one-per-line JSON, carry the monotone ``seq``,
correlate with the active job (``job``/``tenant`` fields) and with the
simulated timeline (``sim_time`` from the ambient trace offset), and
cost nothing when logging is not configured.
"""

from __future__ import annotations

import pytest

from repro import telemetry
from repro.telemetry import Telemetry, log
from repro.telemetry.jobs import job


@pytest.fixture(autouse=True)
def _clean_logging():
    yield
    log.disable()


class TestRecords:
    def test_noop_until_configured(self):
        assert not log.enabled()
        log.info("ignored")  # must not raise

    def test_capture_and_fields(self):
        with log.capture() as cap:
            log.info("checkpoint.write", nbytes=4096, path="ck/000010")
        (record,) = cap.records()
        assert record["event"] == "checkpoint.write"
        assert record["level"] == "info"
        assert record["nbytes"] == 4096
        assert record["path"] == "ck/000010"
        assert record["seq"] >= 1
        assert "ts" in record

    def test_seq_is_monotone(self):
        with log.capture() as cap:
            log.info("a")
            log.info("b")
            log.info("c")
        seqs = [r["seq"] for r in cap.records()]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 3

    def test_level_threshold(self):
        with log.capture(level="warning") as cap:
            log.debug("quiet")
            log.info("quiet")
            log.warning("loud")
            log.error("loud")
        assert [r["level"] for r in cap.records()] == ["warning", "error"]
        assert not log.enabled("info")

    def test_unserializable_fields_fall_back_to_str(self):
        with log.capture() as cap:
            log.info("weird", payload=object())
        (record,) = cap.records()
        assert isinstance(record["payload"], str)


class TestCorrelation:
    def test_job_and_tenant_stamped(self):
        with log.capture() as cap:
            with job("corr-1", tenant="acme"):
                log.info("inside")
            log.info("outside")
        inside, outside = cap.records()
        assert inside["job"] == "corr-1"
        assert inside["tenant"] == "acme"
        assert "job" not in outside

    def test_sim_time_from_trace_offset(self):
        tele = Telemetry.enabled(trace=True, metrics=False)
        with telemetry.use(tele):
            tele.trace.complete(("locale0", "w"), "work", 0.0, 1.25)
            tele.trace.advance(1.25)
            with log.capture() as cap:
                log.info("after-work")
        (record,) = cap.records()
        assert record["sim_time"] == pytest.approx(1.25)

    def test_no_sim_time_without_tracing(self):
        with log.capture() as cap:
            log.info("untraced")
        (record,) = cap.records()
        assert "sim_time" not in record


class TestFileSink:
    def test_path_sink_appends_and_reads_back(self, tmp_path):
        path = tmp_path / "run.jsonl"
        log.configure(path=path, level="debug")
        log.debug("first", x=1)
        log.disable()
        log.configure(path=path)
        log.info("second", y=2.5)
        log.disable()
        records = log.read_jsonl(path)
        assert [r["event"] for r in records] == ["first", "second"]
        assert records[1]["y"] == 2.5

    def test_stream_and_path_are_exclusive(self, tmp_path):
        import io

        with pytest.raises(ValueError):
            log.configure(stream=io.StringIO(), path=tmp_path / "x.jsonl")


class TestInstrumentationSites:
    def test_simulator_crash_is_logged(self):
        """The fault-injection path logs structured crash records."""
        from repro.resilience.faults import FaultPlan
        from repro.runtime import Cluster, laptop_machine

        import repro
        from repro.basis import SpinBasis
        from repro.distributed import (
            DistributedOperator,
            DistributedVector,
            enumerate_states,
        )

        cluster = Cluster(3, laptop_machine(cores=4))
        dbasis, _ = enumerate_states(cluster, SpinBasis(8))
        expr = repro.heisenberg_chain(8)
        dop = DistributedOperator(
            expr,
            dbasis,
            method="pc",
            faults=FaultPlan(seed=0, crashes={1: 1e-7}),
        )
        x = DistributedVector.full_random(dbasis, seed=0)
        with log.capture() as cap:
            dop.matvec(x)
        crashes = [
            r for r in cap.records() if r["event"] == "simulator.crash"
        ]
        assert crashes and crashes[0]["locale"] == 1
