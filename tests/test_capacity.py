"""Tests for the capacity planner."""

import pytest

from repro.perfmodel import plan_capacity
from repro.perfmodel.capacity import (
    MEMORY_HEADROOM,
    NODE_MEMORY_BYTES,
    bytes_per_locale,
    minimum_locales,
)
from repro.perfmodel.workloads import paper_workload


class TestMinimumNodeCounts:
    """The paper's runs pin the ground truth: 40- and 42-spin systems are
    'the two largest problem sizes we could run on a single node'; 44-spin
    runs start at 4 nodes; 46-spin runs start at 16 nodes."""

    @pytest.mark.parametrize(
        "n_sites,expected",
        [(40, 1), (42, 1), (44, 4), (46, 16)],
    )
    def test_matches_paper(self, n_sites, expected):
        assert minimum_locales(paper_workload(n_sites)) == expected

    def test_42_is_the_largest_single_node_size(self):
        assert minimum_locales(paper_workload(42)) == 1
        assert minimum_locales(paper_workload(44)) > 1

    def test_48_spins_needs_a_large_machine(self):
        assert minimum_locales(paper_workload(48)) >= 32


class TestPlan:
    def test_default_plan_fits(self):
        plan = plan_capacity(44)
        assert plan.fits
        assert plan.memory_utilization <= MEMORY_HEADROOM + 1e-9

    def test_explicit_node_count(self):
        plan = plan_capacity(44, n_locales=64)
        assert plan.n_locales == 64
        assert plan.fits

    def test_infeasible_flagged(self):
        plan = plan_capacity(48, n_locales=1)
        assert not plan.fits
        assert plan.bytes_per_locale > NODE_MEMORY_BYTES

    def test_memory_scales_inversely_with_nodes(self):
        w = paper_workload(44)
        assert bytes_per_locale(w, 8) == pytest.approx(
            bytes_per_locale(w, 4) / 2, rel=0.01
        )

    def test_lanczos_time_scales_with_iterations(self):
        short = plan_capacity(42, n_locales=4, lanczos_iterations=10)
        long = plan_capacity(42, n_locales=4, lanczos_iterations=100)
        assert long.lanczos_seconds == pytest.approx(
            10 * short.lanczos_seconds
        )

    def test_more_nodes_faster_matvec(self):
        slow = plan_capacity(44, n_locales=4)
        fast = plan_capacity(44, n_locales=64)
        assert fast.matvec_seconds < slow.matvec_seconds / 8
