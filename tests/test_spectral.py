"""Tests for dynamical spectral functions."""

import numpy as np
import pytest

import repro
from repro.basis import SpinBasis, SymmetricBasis
from repro.linalg import spectral_function
from repro.symmetry import chain_symmetries


@pytest.fixture(scope="module")
def system():
    n = 10
    basis = SpinBasis(n, hamming_weight=5)
    op = repro.Operator(repro.heisenberg_chain(n), basis)
    h = op.to_dense()
    evals, evecs = np.linalg.eigh(h)
    return n, basis, op, evals, evecs


def staggered_sz(n):
    expr = repro.Expression()
    for i in range(n):
        expr = expr + ((-1) ** i / np.sqrt(n)) * repro.spin_z(i)
    return expr


class TestAgainstDenseDecomposition:
    def test_sum_rule(self, system):
        n, basis, op, evals, evecs = system
        gs = evecs[:, 0]
        probe = repro.Operator(staggered_sz(n), basis)
        seed = probe.matvec(gs)
        sf = spectral_function(op.matvec, seed, ground_energy=evals[0])
        static = float(gs @ (probe.to_dense() @ probe.to_dense()) @ gs)
        assert sf.total_weight == pytest.approx(static, abs=1e-10)

    def test_poles_and_weights_match_exact(self, system):
        n, basis, op, evals, evecs = system
        gs = evecs[:, 0]
        probe = repro.Operator(staggered_sz(n), basis)
        seed = probe.matvec(gs)
        sf = spectral_function(
            op.matvec, seed, ground_energy=evals[0], krylov_dim=120
        )
        amps = np.abs(evecs.T @ (probe.to_dense() @ gs)) ** 2
        mask = amps > 1e-10
        # Exact poles may be degenerate; compare broadened curves instead
        # of matching poles one-to-one.
        omega = np.linspace(-0.5, 6.0, 400)
        eta = 0.08
        exact = (
            eta / np.pi / ((omega[:, None] - (evals[mask] - evals[0])) ** 2 + eta**2)
        ) @ amps[mask]
        assert np.allclose(sf(omega, eta), exact, atol=1e-6)

    def test_first_moment(self, system):
        # f-sum-rule style check: first moment equals <0|A [H,A]|0> variant,
        # evaluated here directly from the dense decomposition.
        n, basis, op, evals, evecs = system
        gs = evecs[:, 0]
        probe = repro.Operator(staggered_sz(n), basis)
        seed = probe.matvec(gs)
        sf = spectral_function(op.matvec, seed, ground_energy=evals[0])
        amps = np.abs(evecs.T @ (probe.to_dense() @ gs)) ** 2
        exact_m1 = float((amps * (evals - evals[0])).sum())
        assert sf.moment(1) == pytest.approx(exact_m1, abs=1e-9)

    def test_poles_nonnegative_from_ground_state(self, system):
        n, basis, op, evals, evecs = system
        gs = evecs[:, 0]
        probe = repro.Operator(staggered_sz(n), basis)
        sf = spectral_function(
            op.matvec, probe.matvec(gs), ground_energy=evals[0]
        )
        assert np.all(sf.poles > -1e-9)


class TestInSymmetrySector:
    def test_sector_spectral_function(self):
        # Probe with the symmetrized bond operator inside the k=0 sector.
        n = 12
        group = chain_symmetries(n, momentum=0, parity=0, inversion=0)
        basis = SymmetricBasis(group, hamming_weight=6)
        op = repro.Operator(repro.heisenberg_chain(n), basis)
        evals, evecs = np.linalg.eigh(op.to_dense())
        probe_expr = repro.symmetrize_expression(
            repro.spin_z(0) * repro.spin_z(1), group
        )
        probe = repro.Operator(probe_expr, basis)
        gs = evecs[:, 0]
        sf = spectral_function(op.matvec, probe.matvec(gs), ground_energy=evals[0])
        static = float(gs @ probe.to_dense() @ probe.to_dense() @ gs)
        assert sf.total_weight == pytest.approx(static, abs=1e-10)


class TestInterface:
    def test_zero_seed(self, system):
        _, basis, op, _, _ = system
        sf = spectral_function(op.matvec, np.zeros(basis.dim))
        assert sf.poles.size == 0
        assert np.allclose(sf(np.linspace(0, 1, 5)), 0.0)

    def test_broadening_must_be_positive(self, system):
        n, basis, op, evals, evecs = system
        probe = repro.Operator(staggered_sz(n), basis)
        sf = spectral_function(op.matvec, probe.matvec(evecs[:, 0]))
        with pytest.raises(ValueError):
            sf(np.array([0.0]), broadening=0.0)

    def test_eigenvector_seed_single_pole(self, system):
        _, basis, op, evals, evecs = system
        sf = spectral_function(op.matvec, 2.0 * evecs[:, 3])
        assert sf.poles.size == 1
        assert sf.poles[0] == pytest.approx(evals[3], abs=1e-9)
        assert sf.weights[0] == pytest.approx(4.0, abs=1e-9)
