"""Correctness tests for all distributed matrix-vector products.

Every implementation — naive (per-element remote tasks), batched
(getManyRows + per-chunk tasks), and producer-consumer (the paper's
pipeline, with and without work stealing) — must agree exactly with the
serial reference operator, across symmetry sectors, cluster shapes, and
batch/buffer parameters.
"""

import numpy as np
import pytest
from hypothesis import given, strategies as st

import repro
from repro.basis import SpinBasis, SymmetricBasis
from repro.distributed import (
    DistributedOperator,
    DistributedVector,
    enumerate_states,
)
from repro.distributed.matvec_pc import split_cores
from repro.errors import CompilationError
from repro.runtime import Cluster, laptop_machine
from repro.symmetry import chain_symmetries

METHODS = ["naive", "batched", "pc"]


def build(n, w, sector, n_locales, expr=None, cores=4):
    group = chain_symmetries(n, **sector) if sector else None
    if group is not None:
        serial = SymmetricBasis(group, hamming_weight=w)
        template = SymmetricBasis(group, hamming_weight=w, build=False)
    else:
        serial = SpinBasis(n, hamming_weight=w)
        template = SpinBasis(n, hamming_weight=w)
    cluster = Cluster(n_locales, laptop_machine(cores=cores))
    dbasis, _ = enumerate_states(cluster, template, chunks_per_core=3)
    expr = expr if expr is not None else repro.heisenberg_chain(n)
    serial_op = repro.Operator(expr, serial)
    return serial, serial_op, dbasis, expr


def check_method(serial, serial_op, dbasis, expr, method, rng, **options):
    x = rng.standard_normal(serial.dim).astype(serial.scalar_dtype)
    if serial.scalar_dtype == np.complex128:
        x = x + 1j * rng.standard_normal(serial.dim)
    y_ref = serial_op.matvec(x)
    dx = DistributedVector.from_serial(dbasis, serial, x)
    dop = DistributedOperator(expr, dbasis, method=method, **options)
    dy = dop.matvec(dx)
    np.testing.assert_allclose(dy.to_serial(serial), y_ref, atol=1e-12)
    return dop


class TestAllMethodsMatchSerial:
    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize(
        "sector",
        [
            dict(momentum=0, parity=0, inversion=0),
            dict(momentum=0, parity=1, inversion=1),
            dict(momentum=2, parity=None, inversion=None),
        ],
    )
    def test_symmetric_sectors(self, method, sector, rng):
        args = build(12, 6, sector, n_locales=3)
        check_method(*args, method, rng, batch_size=64)

    @pytest.mark.parametrize("method", METHODS)
    def test_u1_only(self, method, rng):
        args = build(10, 5, None, n_locales=3)
        check_method(*args, method, rng, batch_size=50)

    @pytest.mark.parametrize("method", METHODS)
    def test_full_basis_tfim(self, method, rng):
        expr = repro.transverse_field_ising(8, coupling=1.2, field=0.9)
        serial = SpinBasis(8)
        cluster = Cluster(3, laptop_machine(cores=4))
        dbasis, _ = enumerate_states(cluster, SpinBasis(8))
        serial_op = repro.Operator(expr, serial)
        check_method(serial, serial_op, dbasis, expr, method, rng, batch_size=64)

    @pytest.mark.parametrize("n_locales", [1, 2, 5])
    def test_cluster_sizes(self, n_locales, rng):
        args = build(12, 6, dict(momentum=0, parity=0, inversion=0), n_locales)
        check_method(*args, "pc", rng, batch_size=64)

    @pytest.mark.parametrize("batch_size", [1, 7, 64, 4096])
    def test_batch_sizes(self, batch_size, rng):
        args = build(10, 5, dict(momentum=0, parity=0, inversion=None), 2)
        check_method(*args, "pc", rng, batch_size=batch_size)

    def test_random_couplings_xxz(self, rng):
        expr = repro.xxz_chain(10, jz=float(rng.uniform(-2, 2)), jxy=1.3)
        args = build(10, 5, dict(momentum=0, parity=0, inversion=None), 3, expr)
        for method in METHODS:
            check_method(*args, method, rng, batch_size=64)

    def test_long_range_hamiltonian(self, rng):
        # next-nearest-neighbour interactions exercise wider flip masks
        expr = repro.j1j2_chain(10, j1=1.0, j2=0.7)
        args = build(10, 5, dict(momentum=0, parity=None, inversion=None), 3, expr)
        check_method(*args, "pc", rng, batch_size=32)


class TestProducerConsumerOptions:
    @pytest.fixture
    def args(self):
        return build(12, 6, dict(momentum=0, parity=0, inversion=0), 3)

    def test_work_stealing(self, args, rng):
        check_method(*args, "pc", rng, batch_size=64, work_stealing=True)

    @pytest.mark.parametrize("buffer_capacity", [1, 16, 100000])
    def test_buffer_capacity(self, args, buffer_capacity, rng):
        check_method(
            *args, "pc", rng, batch_size=64, buffer_capacity=buffer_capacity
        )

    @pytest.mark.parametrize("consumer_fraction", [0.1, 0.5])
    def test_consumer_fraction(self, args, consumer_fraction, rng):
        check_method(
            *args, "pc", rng, batch_size=64, consumer_fraction=consumer_fraction
        )

    def test_explicit_worker_counts(self, args, rng):
        check_method(
            *args,
            "pc",
            rng,
            batch_size=64,
            producers_per_locale=2,
            consumers_per_locale=1,
        )

    def test_report_contains_pipeline_stats(self, args, rng):
        dop = check_method(*args, "pc", rng, batch_size=64)
        report = dop.last_report
        assert report.elapsed > 0
        assert report.messages > 0
        assert "stall_time" in report.extras
        assert report.extras["producers"] >= 1
        assert report.extras["consumers"] >= 1

    def test_single_locale_uses_shared_memory_mode(self, rng):
        args = build(10, 5, dict(momentum=0, parity=0, inversion=None), 1)
        dop = check_method(*args, "pc", rng, batch_size=64)
        # shared-memory mode reports generate/search phases, no pipeline
        assert "generate" in dop.last_report.phase_elapsed
        assert "pipeline" not in dop.last_report.phase_elapsed

    def test_repeated_matvec_accumulates_time(self, args, rng):
        serial, serial_op, dbasis, expr = args
        dop = DistributedOperator(expr, dbasis, batch_size=64)
        x = DistributedVector.full_random(dbasis, seed=0)
        dop.matvec(x)
        t1 = dop.total_sim_time
        dop.matvec(x)
        assert dop.total_sim_time > t1

    def test_output_vector_reuse(self, args, rng):
        serial, serial_op, dbasis, expr = args
        dop = DistributedOperator(expr, dbasis, batch_size=64)
        x = DistributedVector.full_random(dbasis, seed=1)
        y = DistributedVector.zeros(dbasis)
        y.fill(999.0)  # stale data must be cleared
        out = dop.matvec(x, y)
        assert out is y
        ref = dop.matvec(x)
        for a, b in zip(out.parts, ref.parts):
            assert np.allclose(a, b)


class TestSplitCores:
    def test_paper_split(self):
        producers, consumers = split_cores(128, 24 / 128)
        assert (producers, consumers) == (104, 24)

    def test_always_at_least_one_each(self):
        assert split_cores(2, 1.0) == (1, 1)
        assert split_cores(2, 1e-9) == (1, 1)

    def test_single_core_shares(self):
        # cores=1 means one worker plays both roles, not a crash
        assert split_cores(1, 24 / 128) == (1, 1)
        assert split_cores(1, 1.0) == (1, 1)

    def test_invalid_inputs_rejected(self):
        from repro.errors import ConfigError

        for cores in (0, -4):
            with pytest.raises(ConfigError):
                split_cores(cores, 0.25)
        for fraction in (0.0, -0.1, 1.5):
            with pytest.raises(ConfigError):
                split_cores(8, fraction)

    @given(
        cores=st.integers(min_value=1, max_value=128),
        fraction=st.floats(
            min_value=1e-6, max_value=1.0, allow_nan=False
        ),
    )
    def test_property_both_pools_populated(self, cores, fraction):
        producers, consumers = split_cores(cores, fraction)
        assert producers >= 1
        assert consumers >= 1
        if cores == 1:
            # the single core is shared, not split
            assert (producers, consumers) == (1, 1)
        else:
            assert producers + consumers == cores

    def test_fraction_rounding(self):
        producers, consumers = split_cores(10, 0.25)
        assert producers + consumers == 10
        # python rounds half to even, so 2.5 consumers may become 2 or 3
        assert consumers in (2, 3)


class TestValidation:
    def test_unknown_method(self):
        args = build(8, 4, None, 2)
        _, _, dbasis, expr = args
        with pytest.raises(ValueError):
            DistributedOperator(expr, dbasis, method="warp")

    def test_non_conserving_rejected(self):
        _, _, dbasis, _ = build(8, 4, None, 2)
        with pytest.raises(CompilationError):
            DistributedOperator(repro.transverse_field_ising(8), dbasis)

    def test_vector_from_wrong_basis_rejected(self):
        from repro.errors import DistributionError

        _, _, dbasis_a, expr = build(8, 4, None, 2)
        _, _, dbasis_b, _ = build(8, 4, None, 3)
        dop = DistributedOperator(expr, dbasis_a)
        x = DistributedVector.full_random(dbasis_b, seed=0)
        with pytest.raises(DistributionError):
            dop.matvec(x)

    def test_identity_operator(self, rng):
        from repro.operators.expression import identity

        serial, _, dbasis, _ = build(8, 4, None, 2)
        x = rng.standard_normal(serial.dim)
        dx = DistributedVector.from_serial(dbasis, serial, x)
        dop = DistributedOperator(identity(), dbasis, batch_size=16)
        dy = dop.matvec(dx)
        assert np.allclose(dy.to_serial(serial), x)

    def test_zero_vector_stays_zero(self):
        _, _, dbasis, expr = build(10, 5, None, 2)
        dop = DistributedOperator(expr, dbasis)
        dy = dop.matvec(DistributedVector.zeros(dbasis))
        assert all(np.all(p == 0) for p in dy.parts)
