"""Tests for the Lanczos eigensolver and its distributed variant."""

import numpy as np
import pytest
import scipy.sparse.linalg as spla

import repro
from repro.basis import SpinBasis, SymmetricBasis
from repro.errors import ConvergenceError
from repro.linalg import lanczos, lanczos_distributed
from repro.symmetry import chain_symmetries


@pytest.fixture
def operator():
    group = chain_symmetries(14, momentum=0, parity=0, inversion=0)
    basis = SymmetricBasis(group, hamming_weight=7)
    return repro.Operator(repro.heisenberg_chain(14), basis)


class TestEigenvalues:
    def test_lowest_eigenvalue_matches_dense(self, operator, rng):
        ref = np.linalg.eigvalsh(operator.to_dense())[0]
        res = lanczos(
            operator.matvec, rng.standard_normal(operator.dim), k=1, tol=1e-12
        )
        assert res.eigenvalues[0] == pytest.approx(ref, abs=1e-9)
        assert res.converged

    def test_multiple_eigenvalues(self, operator, rng):
        ref = np.linalg.eigvalsh(operator.to_dense())[:4]
        res = lanczos(
            operator.matvec, rng.standard_normal(operator.dim), k=4, tol=1e-12
        )
        assert np.allclose(res.eigenvalues, ref, atol=1e-8)

    def test_matches_scipy_eigsh(self, operator, rng):
        ref = spla.eigsh(operator.as_linear_operator(), k=2, which="SA")[0]
        res = lanczos(
            operator.matvec, rng.standard_normal(operator.dim), k=2, tol=1e-12
        )
        assert np.allclose(np.sort(res.eigenvalues), np.sort(ref), atol=1e-8)

    def test_complex_sector(self, rng):
        group = chain_symmetries(10, momentum=3, parity=None, inversion=None)
        basis = SymmetricBasis(group, hamming_weight=5)
        op = repro.Operator(repro.heisenberg_chain(10), basis)
        ref = np.linalg.eigvalsh(op.to_dense())[0]
        v0 = rng.standard_normal(op.dim) + 1j * rng.standard_normal(op.dim)
        res = lanczos(op.matvec, v0, k=1, tol=1e-12)
        assert res.eigenvalues[0] == pytest.approx(ref, abs=1e-9)

    def test_diagonal_matrix_exact(self):
        diag = np.array([3.0, -1.0, 5.0, 0.5])
        res = lanczos(lambda v: diag * v, np.ones(4), k=2, tol=1e-13)
        assert np.allclose(np.sort(res.eigenvalues), [-1.0, 0.5])


class TestEigenvectors:
    def test_eigenvector_residual(self, operator, rng):
        res = lanczos(
            operator.matvec,
            rng.standard_normal(operator.dim),
            k=2,
            tol=1e-12,
            compute_eigenvectors=True,
        )
        for value, vector in zip(res.eigenvalues, res.eigenvectors):
            residual = operator.matvec(vector) - value * vector
            assert np.linalg.norm(residual) < 1e-7

    def test_eigenvectors_orthonormal(self, operator, rng):
        res = lanczos(
            operator.matvec,
            rng.standard_normal(operator.dim),
            k=3,
            tol=1e-12,
            compute_eigenvectors=True,
        )
        v = np.stack(res.eigenvectors, axis=1)
        assert np.allclose(v.T @ v, np.eye(3), atol=1e-8)


class TestRobustness:
    def test_ghost_eigenvalues_without_reorthogonalization(self, rng):
        # Without reorthogonalization, converged Ritz values reappear as
        # spurious duplicates ("ghosts") once orthogonality degrades; the
        # reorthogonalized run keeps the second eigenvalue distinct.
        rng_local = np.random.default_rng(0)
        diag = np.concatenate([[-10.0], np.linspace(0, 1, 399)])
        matvec = lambda v: diag * v  # noqa: E731
        v0 = rng_local.standard_normal(400)
        clean = lanczos(
            matvec, v0, k=2, tol=1e-12, max_iter=250, reorthogonalize=True
        )
        dirty = lanczos(
            matvec,
            v0,
            k=2,
            tol=1e-12,
            max_iter=250,
            reorthogonalize=False,
            raise_on_no_convergence=False,
        )
        gap_clean = clean.eigenvalues[1] - clean.eigenvalues[0]
        gap_dirty = dirty.eigenvalues[1] - dirty.eigenvalues[0]
        # the dirty run collapses the gap (ghost copy of -10 appears)
        assert gap_clean > 5.0
        assert gap_dirty < 1.0

    def test_zero_start_vector_rejected(self, operator):
        with pytest.raises(ValueError):
            lanczos(operator.matvec, np.zeros(operator.dim), k=1)

    def test_convergence_error(self, operator, rng):
        with pytest.raises(ConvergenceError):
            lanczos(
                operator.matvec,
                rng.standard_normal(operator.dim),
                k=1,
                tol=1e-14,
                max_iter=3,
            )

    def test_no_raise_flag(self, operator, rng):
        res = lanczos(
            operator.matvec,
            rng.standard_normal(operator.dim),
            k=1,
            tol=1e-14,
            max_iter=5,
            raise_on_no_convergence=False,
        )
        assert not res.converged

    def test_invariant_subspace_early_exit(self):
        # Start exactly inside a 2-dimensional invariant subspace.
        diag = np.array([1.0, 2.0, 3.0, 4.0])
        v0 = np.array([1.0, 1.0, 0.0, 0.0])
        res = lanczos(lambda v: diag * v, v0, k=2, tol=1e-12)
        assert np.allclose(np.sort(res.eigenvalues), [1.0, 2.0])

    def test_k_larger_than_reachable_space(self):
        diag = np.array([1.0, 2.0])
        with pytest.raises(ConvergenceError):
            lanczos(lambda v: diag * v, np.array([1.0, 0.0]), k=2, max_iter=50)


class TestDistributed:
    def test_distributed_matches_serial(self, rng):
        group = chain_symmetries(12, momentum=0, parity=0, inversion=0)
        serial = SymmetricBasis(group, hamming_weight=6)
        ref = np.linalg.eigvalsh(
            repro.Operator(repro.heisenberg_chain(12), serial).to_dense()
        )[:2]
        cluster = repro.Cluster(3, repro.laptop_machine(cores=4))
        template = SymmetricBasis(group, hamming_weight=6, build=False)
        dbasis = repro.DistributedBasis.from_template(cluster, template)
        dop = repro.DistributedOperator(
            repro.heisenberg_chain(12), dbasis, batch_size=128
        )
        res, sim_time = lanczos_distributed(dop, k=2, tol=1e-10)
        assert np.allclose(res.eigenvalues, ref, atol=1e-8)
        assert sim_time > 0

    def test_distributed_u1(self):
        serial = SpinBasis(10, hamming_weight=5)
        ref = np.linalg.eigvalsh(
            repro.Operator(repro.heisenberg_chain(10), serial).to_dense()
        )[0]
        cluster = repro.Cluster(2, repro.laptop_machine(cores=4))
        dbasis = repro.DistributedBasis.from_template(
            cluster, SpinBasis(10, hamming_weight=5)
        )
        dop = repro.DistributedOperator(repro.heisenberg_chain(10), dbasis)
        res, _ = lanczos_distributed(dop, k=1, tol=1e-10)
        assert res.eigenvalues[0] == pytest.approx(ref, abs=1e-8)
