"""Tests for the hashed distribution (hash64_01 / localeIdxOf)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.distributed import hash64, locale_of


class TestHash64:
    def test_zero_maps_to_zero(self):
        # splitmix64 finalizer fixes 0 (a known property).
        assert int(hash64(np.uint64(0))) == 0

    def test_reference_values(self):
        # Reference values computed from the splitmix64 finalizer definition.
        def ref(x):
            mask = (1 << 64) - 1
            x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & mask
            x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & mask
            return (x ^ (x >> 31)) & mask

        for value in [1, 2, 1234567, (1 << 48) - 1, (1 << 64) - 1]:
            assert int(hash64(np.uint64(value))) == ref(value)

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_deterministic(self, x):
        assert int(hash64(np.uint64(x))) == int(hash64(np.uint64(x)))

    def test_vectorized_matches_scalar(self, rng):
        batch = rng.integers(0, 1 << 62, size=1000, dtype=np.uint64)
        vec = hash64(batch)
        for i in range(0, 1000, 97):
            assert vec[i] == hash64(batch[i : i + 1])[0]

    def test_mixes_low_bits(self):
        # consecutive inputs should produce wildly different hashes
        hashes = hash64(np.arange(1024, dtype=np.uint64))
        assert np.unique(hashes).size == 1024
        # top bit should be roughly balanced
        top = (hashes >> np.uint64(63)).sum()
        assert 400 < int(top) < 624


class TestLocaleOf:
    def test_range(self, rng):
        states = rng.integers(0, 1 << 50, size=500, dtype=np.uint64)
        locales = locale_of(states, 7)
        assert locales.min() >= 0
        assert locales.max() < 7

    def test_single_locale(self, rng):
        states = rng.integers(0, 1 << 50, size=100, dtype=np.uint64)
        assert np.all(locale_of(states, 1) == 0)

    def test_rejects_zero_locales(self):
        with pytest.raises(ValueError):
            locale_of(np.array([1], dtype=np.uint64), 0)

    @staticmethod
    def _representatives():
        # Surviving orbit representatives of a 20-site chain: strongly
        # clustered toward small values (orbit minima), the paper's
        # motivating example of a non-uniform state distribution.
        from repro.basis import SymmetricBasis
        from repro.symmetry import chain_symmetries

        basis = SymmetricBasis(
            chain_symmetries(20, momentum=0, parity=0, inversion=0),
            hamming_weight=10,
        )
        return basis.states

    def test_load_balance_on_structured_states(self):
        # The paper's point: representatives hash to locales near-uniformly.
        states = self._representatives()
        n_locales = 8
        counts = np.bincount(locale_of(states, n_locales), minlength=n_locales)
        imbalance = counts.max() / counts.mean()
        assert imbalance < 1.25

    def test_block_split_of_value_range_is_imbalanced(self):
        # Counterpoint: splitting the raw value range into equal blocks
        # would be badly imbalanced (this is why hashing is used).
        states = self._representatives().astype(np.float64)
        n_locales = 8
        edges = np.linspace(0, 1 << 20, n_locales + 1)
        counts, _ = np.histogram(states, bins=edges)
        imbalance = counts.max() / counts.mean()
        assert imbalance > 3.0
