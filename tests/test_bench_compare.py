"""Tests for the benchmark baseline store and regression gate
(``repro.bench``): flattening of result artifacts, online statistics
merging, gate classification, noise-aware verdicts, and the directory
comparison the CI job runs."""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    Stat,
    compare_dirs,
    flatten_result,
    format_markdown,
    format_table,
    load_baseline,
    record,
)
from repro.bench.compare import classify, compare_metrics
from repro.bench.__main__ import main as bench_main


class TestFlatten:
    def test_nested_dicts_and_lists(self):
        flat = flatten_result(
            {
                "simulated_seconds": {"pc": 0.5, "naive": 2.0},
                "series": [1.0, 2.0],
                "smoke": True,
                "note": "text is skipped",
            }
        )
        assert flat == {
            "simulated_seconds.pc": 0.5,
            "simulated_seconds.naive": 2.0,
            "series.0": 1.0,
            "series.1": 2.0,
        }

    def test_booleans_are_not_metrics(self):
        assert flatten_result({"ok": True, "n": 3}) == {"n": 3.0}


class TestStat:
    def test_merged_matches_batch_statistics(self):
        values = [1.0, 2.0, 4.0, 8.0]
        stat = Stat(mean=values[0])
        for value in values[1:]:
            stat = stat.merged(value)
        assert stat.n == 4
        assert stat.mean == pytest.approx(sum(values) / 4)
        mean = sum(values) / 4
        variance = sum((v - mean) ** 2 for v in values) / 4
        assert stat.stddev == pytest.approx(variance**0.5)


class TestClassification:
    @pytest.mark.parametrize(
        "key, hard, direction",
        [
            ("pc.simulated_seconds", True, "lower"),
            ("overlap_efficiency.pc", True, "higher"),
            ("hit_rate", True, "higher"),
            ("pc.stall_fraction", True, "lower"),
            ("imbalance_index", True, "lower"),
            ("naive.bytes", True, "exact"),
            ("messages", True, "exact"),
            ("plan_hits", True, "exact"),
            ("dim", True, "exact"),
            ("speedup", False, "higher"),
            ("cold_seconds", False, "lower"),
            ("warm_seconds", False, "lower"),
            ("group_order", False, "exact"),
            # peak memory must stay soft even though the keys end in
            # "bytes" (the hard volume rule would otherwise claim them)
            ("pc.peak_array_bytes", False, "lower"),
            ("pc.peak_tracemalloc_bytes", False, "lower"),
        ],
    )
    def test_gate_classes(self, key, hard, direction):
        gate = classify(key)
        assert gate.hard is hard
        assert gate.direction == direction

    def test_memory_regression_warns_not_fails(self):
        baseline = {"pc.peak_tracemalloc_bytes": Stat(mean=1e6, stddev=0.0, n=3)}
        (row,) = compare_metrics(
            "x", baseline, {"pc.peak_tracemalloc_bytes": 2e6}
        )
        assert row.verdict == "warn"
        assert not row.fails


class TestVerdicts:
    def test_within_noise_is_ok(self):
        baseline = {"pc.simulated_seconds": Stat(mean=1.0, stddev=0.1, n=5)}
        (row,) = compare_metrics("x", baseline, {"pc.simulated_seconds": 1.15})
        assert row.verdict == "ok"

    def test_hard_slowdown_is_regression(self):
        baseline = {"pc.simulated_seconds": Stat(mean=1.0, stddev=0.01, n=5)}
        (row,) = compare_metrics("x", baseline, {"pc.simulated_seconds": 1.5})
        assert row.verdict == "regression"
        assert row.fails

    def test_hard_speedup_is_improvement(self):
        baseline = {"pc.simulated_seconds": Stat(mean=1.0, stddev=0.01, n=5)}
        (row,) = compare_metrics("x", baseline, {"pc.simulated_seconds": 0.5})
        assert row.verdict == "improved"
        assert not row.fails

    def test_overlap_drop_is_regression(self):
        baseline = {"overlap_efficiency": Stat(mean=0.8)}
        (row,) = compare_metrics("x", baseline, {"overlap_efficiency": 0.4})
        assert row.verdict == "regression"

    def test_byte_count_drift_is_regression_either_way(self):
        baseline = {"bytes": Stat(mean=1000.0)}
        (up,) = compare_metrics("x", baseline, {"bytes": 1001.0})
        (down,) = compare_metrics("x", baseline, {"bytes": 999.0})
        assert up.verdict == "regression"
        assert down.verdict == "regression"

    def test_wall_clock_slowdown_only_warns(self):
        baseline = {"cold_seconds": Stat(mean=1.0, stddev=0.05, n=5)}
        (row,) = compare_metrics("x", baseline, {"cold_seconds": 3.0})
        assert row.verdict == "warn"
        assert not row.fails

    def test_two_sigma_band_respects_recorded_noise(self):
        noisy = {"pc.simulated_seconds": Stat(mean=1.0, stddev=0.5, n=10)}
        (row,) = compare_metrics("x", noisy, {"pc.simulated_seconds": 1.9})
        assert row.verdict == "ok"  # within 2 sigma
        (row,) = compare_metrics(
            "x", noisy, {"pc.simulated_seconds": 2.1}, sigmas=2.0
        )
        assert row.verdict == "regression"

    def test_new_and_missing_metrics(self):
        baseline = {"old": Stat(mean=1.0)}
        rows = compare_metrics("x", baseline, {"fresh": 2.0})
        verdicts = {row.key: row.verdict for row in rows}
        assert verdicts == {"old": "missing", "fresh": "new"}


def _write_result(directory, name, data):
    (directory / f"{name}.json").write_text(
        json.dumps({"name": name, "data": data})
    )


class TestDirectories:
    def test_record_then_compare_roundtrip(self, tmp_path):
        results = tmp_path / "results"
        baselines = tmp_path / "baselines"
        results.mkdir()
        _write_result(results, "pipe", {"simulated_seconds": {"pc": 0.5}})
        assert record(results, baselines) == ["pipe"]
        rows, ok = compare_dirs(results, baselines)
        assert ok
        assert all(row.verdict == "ok" for row in rows)

    def test_update_merges_statistics(self, tmp_path):
        results = tmp_path / "results"
        baselines = tmp_path / "baselines"
        results.mkdir()
        _write_result(results, "pipe", {"cold_seconds": 1.0})
        record(results, baselines)
        _write_result(results, "pipe", {"cold_seconds": 2.0})
        record(results, baselines, update=True)
        stats = load_baseline(baselines / "pipe.json")
        assert stats["cold_seconds"].n == 2
        assert stats["cold_seconds"].mean == pytest.approx(1.5)
        assert stats["cold_seconds"].stddev > 0

    def test_regression_fails_directory_compare(self, tmp_path):
        results = tmp_path / "results"
        baselines = tmp_path / "baselines"
        results.mkdir()
        _write_result(results, "pipe", {"simulated_seconds": {"pc": 0.5}})
        record(results, baselines)
        _write_result(results, "pipe", {"simulated_seconds": {"pc": 0.9}})
        rows, ok = compare_dirs(results, baselines)
        assert not ok
        table = format_table(rows)
        assert "REGRESSION" in table
        markdown = format_markdown(rows)
        assert "**REGRESSION**" in markdown

    def test_unbaselined_artifact_does_not_fail(self, tmp_path):
        results = tmp_path / "results"
        baselines = tmp_path / "baselines"
        results.mkdir()
        baselines.mkdir()
        _write_result(results, "orphan", {"speedup": 3.0})
        rows, ok = compare_dirs(results, baselines)
        assert ok
        assert rows[0].verdict == "new"

    def test_stale_baseline_is_skipped(self, tmp_path):
        """Baselines whose artifact was not regenerated don't fail the
        smoke run (CI only reruns a subset of the benchmarks)."""
        results = tmp_path / "results"
        baselines = tmp_path / "baselines"
        results.mkdir()
        _write_result(results, "pipe", {"bytes": 100})
        record(results, baselines)
        (results / "pipe.json").unlink()
        rows, ok = compare_dirs(results, baselines)
        assert ok and rows == []

    def test_cli_compare_and_summary(self, tmp_path, capsys):
        results = tmp_path / "results"
        baselines = tmp_path / "baselines"
        results.mkdir()
        _write_result(results, "pipe", {"simulated_seconds": {"pc": 0.5}})
        assert bench_main(["record", str(results), str(baselines)]) == 0
        summary = tmp_path / "summary.md"
        assert (
            bench_main(
                [
                    "compare",
                    str(results),
                    str(baselines),
                    "--summary",
                    str(summary),
                ]
            )
            == 0
        )
        assert "regression gate passed" in capsys.readouterr().out
        assert "Benchmark regression gate" in summary.read_text()
        # now regress and expect a non-zero exit
        _write_result(results, "pipe", {"simulated_seconds": {"pc": 5.0}})
        assert (
            bench_main(["compare", str(results), str(baselines)]) == 1
        )

    def test_strict_promotes_warnings(self, tmp_path):
        results = tmp_path / "results"
        baselines = tmp_path / "baselines"
        results.mkdir()
        _write_result(results, "pipe", {"cold_seconds": 1.0})
        record(results, baselines)
        _write_result(results, "pipe", {"cold_seconds": 9.0})
        _, ok = compare_dirs(results, baselines)
        assert ok  # wall-clock drift only warns
        _, ok = compare_dirs(results, baselines, strict=True)
        assert not ok
