"""Tests for symmetry generators, group closure, and state_info."""

import numpy as np
import pytest

from repro.errors import InvalidSectorError
from repro.symmetry import (
    Permutation,
    Symmetry,
    SymmetryGroup,
    chain_symmetries,
    reflection,
    spin_inversion,
    translation,
)


class TestSymmetryGenerator:
    def test_translation_order(self):
        assert translation(8).order == 8

    def test_reflection_order(self):
        assert reflection(8).order == 2

    def test_spin_inversion_order(self):
        assert spin_inversion(8).order == 2

    def test_flip_doubles_odd_order(self):
        # A 3-cycle combined with a flip has order 6.
        gen = Symmetry(Permutation([1, 2, 0]), flip=True)
        assert gen.order == 6

    def test_character_is_root_of_unity(self):
        gen = translation(8, sector=3)
        assert gen.character**8 == pytest.approx(1.0)
        assert gen.character == pytest.approx(np.exp(-2j * np.pi * 3 / 8))

    def test_action_with_flip(self):
        gen = spin_inversion(4)
        assert int(gen(np.uint64(0b0011))) == 0b1100

    def test_accepts_raw_sequence_as_permutation(self):
        gen = Symmetry([1, 0], sector=1)
        assert gen.permutation == Permutation([1, 0])


class TestClosure:
    def test_trivial_group(self):
        g = SymmetryGroup.trivial(6)
        assert g.size == 1
        assert g.is_real

    def test_translation_group_size(self):
        g = SymmetryGroup.from_generators([translation(10)])
        assert g.size == 10

    def test_dihedral_group_size(self):
        g = SymmetryGroup.from_generators([translation(10), reflection(10)])
        assert g.size == 20

    def test_full_chain_group_size(self):
        g = chain_symmetries(10, momentum=0, parity=0, inversion=0)
        assert g.size == 40

    def test_identity_has_unit_character(self):
        g = chain_symmetries(8, momentum=0, parity=1, inversion=0)
        for perm, flip, char in zip(g.permutations, g.flips, g.characters):
            if perm.is_identity and not flip:
                assert char == pytest.approx(1.0)

    def test_characters_multiply(self):
        # chi is a homomorphism: chi(g)^order == 1 for every element.
        g = chain_symmetries(6, momentum=2, parity=None, inversion=None)
        for perm, flip, char in zip(g.permutations, g.flips, g.characters):
            order = perm.order * (2 if flip and perm.order % 2 else 1)
            assert char**order == pytest.approx(1.0)

    def test_inconsistent_sector_raises(self):
        # Reflection maps momentum k to -k: k=1 with parity is inconsistent.
        with pytest.raises(InvalidSectorError):
            chain_symmetries(8, momentum=1, parity=0, inversion=None)

    def test_momentum_half_with_reflection_is_consistent(self):
        g = chain_symmetries(8, momentum=4, parity=0, inversion=None)
        assert g.size == 16

    def test_empty_generators_rejected(self):
        with pytest.raises(ValueError):
            SymmetryGroup.from_generators([])

    def test_mixed_sizes_rejected(self):
        with pytest.raises(ValueError):
            SymmetryGroup.from_generators([translation(4), translation(6)])

    def test_is_real_for_momentum_zero(self):
        assert chain_symmetries(8, momentum=0).is_real

    def test_is_real_for_momentum_pi(self):
        assert chain_symmetries(8, momentum=4, parity=None, inversion=None).is_real

    def test_complex_for_generic_momentum(self):
        g = chain_symmetries(8, momentum=1, parity=None, inversion=None)
        assert not g.is_real


class TestStateInfo:
    @pytest.fixture
    def group(self):
        return chain_symmetries(8, momentum=0, parity=0, inversion=0)

    def test_representative_is_orbit_minimum(self, group, rng):
        states = rng.integers(0, 1 << 8, size=100, dtype=np.uint64)
        rep, _, _ = group.state_info(states)
        for s, r in zip(states, rep):
            orbit = group.full_orbit(int(s))
            assert int(r) == int(orbit.min())

    def test_representative_idempotent(self, group, rng):
        states = rng.integers(0, 1 << 8, size=100, dtype=np.uint64)
        rep1, _, _ = group.state_info(states)
        rep2, _, _ = group.state_info(rep1)
        assert np.array_equal(rep1, rep2)

    def test_stab_constant_along_orbit(self, group):
        state = 0b00110101
        orbit = group.full_orbit(state)
        _, _, stab = group.state_info(orbit)
        assert np.allclose(stab, stab[0])

    def test_stab_times_orbit_size_for_trivial_sector(self, group):
        # In the trivial sector chi==1, so N_s = |Stab(s)| and
        # |Stab| * |Orbit| = |G|.
        state = 0b00110101
        orbit = group.full_orbit(state)
        _, _, stab = group.state_info(np.array([state], dtype=np.uint64))
        assert stab[0] * orbit.size == pytest.approx(group.size)

    def test_phase_maps_state_to_representative(self, group, rng):
        # For each state there must exist an element with chi* == phase
        # mapping the state to its representative.
        states = rng.integers(0, 1 << 8, size=50, dtype=np.uint64)
        rep, phase, _ = group.state_info(states)
        for s, r, ph in zip(states, rep, phase):
            found = False
            for i in range(group.size):
                if int(group.apply_element(i, np.uint64(s))) == int(r):
                    if np.isclose(np.conj(group.characters[i]), ph):
                        found = True
                        break
            assert found

    def test_is_representative_counts(self, group):
        states = np.arange(1 << 8, dtype=np.uint64)
        mask = group.is_representative(states)
        from repro.symmetry import sector_dimension

        assert int(mask.sum()) == sector_dimension(group, hamming_weight=None)

    def test_phases_unit_modulus_complex_sector(self):
        g = chain_symmetries(6, momentum=1, parity=None, inversion=None)
        states = np.arange(1 << 6, dtype=np.uint64)
        _, phase, _ = g.state_info(states)
        assert np.allclose(np.abs(phase), 1.0)

    def test_zero_norm_states_detected(self):
        # At momentum pi, the all-up state (orbit of size 1) has
        # sum_g chi(g)* = sum of characters over the whole group = 0.
        g = chain_symmetries(4, momentum=2, parity=None, inversion=None)
        state = np.array([0b1111], dtype=np.uint64)
        _, _, stab = g.state_info(state)
        assert stab[0] == pytest.approx(0.0, abs=1e-12)
