"""Distributed Krylov workloads beyond the eigensolver: time evolution and
spectral functions running on the simulated cluster's vector space."""

import numpy as np
import pytest
import scipy.linalg as sla

import repro
from repro.basis import SymmetricBasis
from repro.distributed import (
    DistributedOperator,
    DistributedVector,
    DistributedVectorSpace,
    enumerate_states,
)
from repro.linalg import expm_krylov, spectral_function
from repro.runtime import Cluster, laptop_machine
from repro.symmetry import chain_symmetries


@pytest.fixture(scope="module")
def setup():
    n, w = 12, 6
    group = chain_symmetries(n, momentum=0, parity=0, inversion=0)
    serial = SymmetricBasis(group, hamming_weight=w)
    cluster = Cluster(3, laptop_machine(cores=4))
    template = SymmetricBasis(group, hamming_weight=w, build=False)
    dbasis, _ = enumerate_states(cluster, template, use_weight_shortcut=True)
    dop = DistributedOperator(
        repro.heisenberg_chain(n), dbasis, batch_size=128
    )
    serial_op = repro.Operator(repro.heisenberg_chain(n), serial)
    return serial, serial_op, dbasis, dop


class TestDistributedTimeEvolution:
    def test_matches_dense_expm(self, setup, rng):
        serial, serial_op, dbasis, dop = setup
        space = DistributedVectorSpace(dbasis)
        xs = rng.standard_normal(serial.dim).astype(np.complex128)
        xs /= np.linalg.norm(xs)
        x = DistributedVector.from_serial(dbasis, serial, xs)
        y = expm_krylov(dop.matvec, x, scale=-0.3j, krylov_dim=35, space=space)
        y_ref = sla.expm(-0.3j * serial_op.to_dense()) @ xs
        assert np.allclose(y.to_serial(serial), y_ref, atol=1e-8)

    def test_real_dtype_promoted_to_complex(self, setup, rng):
        serial, _, dbasis, dop = setup
        space = DistributedVectorSpace(dbasis)
        x = DistributedVector.full_random(dbasis, seed=0)
        y = expm_krylov(dop.matvec, x, scale=-0.1j, krylov_dim=20, space=space)
        assert y.dtype == np.complex128

    def test_simulated_time_accumulates(self, setup):
        serial, _, dbasis, dop = setup
        space = DistributedVectorSpace(dbasis)
        x = DistributedVector.full_random(dbasis, seed=1)
        before = dop.total_sim_time
        expm_krylov(dop.matvec, x, scale=-0.1j, krylov_dim=10, space=space)
        assert dop.total_sim_time > before
        assert space.report.elapsed > 0


class TestDistributedSpectralFunction:
    def test_matches_serial_spectral_function(self, setup, rng):
        serial, serial_op, dbasis, dop = setup
        space = DistributedVectorSpace(dbasis)
        # seed both computations with the same vector
        seed_serial = rng.standard_normal(serial.dim)
        seed_dist = DistributedVector.from_serial(dbasis, serial, seed_serial)
        sf_serial = spectral_function(
            serial_op.matvec, seed_serial, krylov_dim=60
        )
        sf_dist = spectral_function(
            dop.matvec, seed_dist, krylov_dim=60, space=space
        )
        assert sf_dist.total_weight == pytest.approx(
            sf_serial.total_weight, rel=1e-10
        )
        omega = np.linspace(-8, 2, 100)
        assert np.allclose(
            sf_dist(omega, 0.1), sf_serial(omega, 0.1), atol=1e-8
        )
