"""Tests for the Krylov-iteration-invariant matvec plan cache.

A :class:`~repro.operators.plan.MatvecPlan` memoizes the symmetry-resolved
``(sources, rows, amplitudes)`` triples of each matvec batch, so repeated
products (every Krylov iteration after the first) skip ``get_many_rows``
and ``stateToIndex`` entirely.  Caching must be *invisible*: results are
bit-for-bit reproducible with the plan on, off, and after invalidation,
for the serial operator and all three distributed variants.
"""

import numpy as np
import pytest

import repro
from repro import telemetry
from repro.basis import SpinBasis, SymmetricBasis
from repro.distributed import (
    DistributedOperator,
    DistributedVector,
    enumerate_states,
)
from repro.linalg import as_matvec, lanczos
from repro.operators import MatvecPlan
from repro.runtime import Cluster, laptop_machine
from repro.symmetry import chain_symmetries


@pytest.fixture
def basis():
    group = chain_symmetries(12, momentum=0, parity=0, inversion=0)
    return SymmetricBasis(group, hamming_weight=6)


@pytest.fixture
def expr():
    return repro.heisenberg_chain(12)


def random_vector(basis, rng):
    x = rng.standard_normal(basis.dim).astype(basis.scalar_dtype)
    if basis.scalar_dtype == np.complex128:
        x = x + 1j * rng.standard_normal(basis.dim)
    return x


class TestSerialPlan:
    def test_plan_matches_unplanned(self, basis, expr, rng):
        planned = repro.Operator(expr, basis, plan=True)
        unplanned = repro.Operator(expr, basis, plan=False)
        assert unplanned.plan is None
        for _ in range(3):  # cold, then two warm replays
            x = random_vector(basis, rng)
            np.testing.assert_allclose(
                planned.matvec(x), unplanned.matvec(x), rtol=1e-12, atol=0
            )
        assert planned.plan.n_entries > 0

    def test_plan_populated_and_replayed(self, basis, expr, rng):
        op = repro.Operator(expr, basis)
        tele = telemetry.Telemetry.enabled(trace=False)
        with telemetry.use(tele):
            x = random_vector(basis, rng)
            op.matvec(x)
            misses = tele.metrics.counter_total("plan.misses")
            op.matvec(x)
        assert misses > 0
        assert tele.metrics.counter_total("plan.hits") == misses
        assert tele.metrics.counter_total("plan.misses") == misses

    def test_invalidation_recomputes_identically(self, basis, expr, rng):
        op = repro.Operator(expr, basis)
        x = random_vector(basis, rng)
        y_cold = op.matvec(x)
        y_warm = op.matvec(x)
        op.invalidate_plan()
        assert op.plan.n_entries == 0
        y_again = op.matvec(x)
        np.testing.assert_array_equal(y_warm, y_cold)
        np.testing.assert_array_equal(y_again, y_cold)

    def test_lanczos_energy_plan_on_off(self, basis, expr, rng):
        v0 = rng.standard_normal(basis.dim)
        energies = []
        for plan in (True, False):
            op = repro.Operator(expr, basis, plan=plan)
            res = lanczos(op, v0.copy(), k=1, tol=1e-12)
            energies.append(res.eigenvalues[0])
            if plan:
                op.invalidate_plan()
                res2 = lanczos(op, v0.copy(), k=1, tol=1e-12)
                np.testing.assert_allclose(
                    res2.eigenvalues, res.eigenvalues, rtol=1e-12
                )
        np.testing.assert_allclose(energies[0], energies[1], rtol=1e-12)

    def test_lanczos_records_plan_hits(self, basis, expr, rng):
        op = repro.Operator(expr, basis)
        tele = telemetry.Telemetry.enabled(trace=False)
        with telemetry.use(tele):
            lanczos(op, rng.standard_normal(basis.dim), k=1, tol=1e-10)
        assert tele.metrics.counter_total("plan.hits") > 0

    def test_shared_plan_instance(self, basis, expr, rng):
        plan = MatvecPlan()
        op = repro.Operator(expr, basis, plan=plan)
        assert op.plan is plan
        op.matvec(random_vector(basis, rng))
        assert plan.n_entries > 0


class TestPlanCachePolicy:
    def test_lru_eviction_under_tiny_budget(self, basis, expr, rng):
        op = repro.Operator(expr, basis, plan=MatvecPlan(capacity_bytes=1))
        x = random_vector(basis, rng)
        y_first = op.matvec(x)
        # Every batch is rejected or evicted, yet results stay correct.
        np.testing.assert_array_equal(op.matvec(x), y_first)
        assert op.plan.nbytes <= 1

    def test_eviction_order_is_lru(self):
        plan = MatvecPlan(capacity_bytes=3 * 240)  # room for three entries
        a = (np.zeros(10), np.zeros(10, dtype=np.int64), np.zeros(10))
        for key in ("a", "b", "c"):
            plan.put(key, a)
        assert plan.get("a") is not None  # refresh "a"
        plan.put("d", a)  # evicts "b", the least recently used
        assert "b" not in plan
        assert "a" in plan and "c" in plan and "d" in plan

    def test_oversized_entry_rejected(self):
        plan = MatvecPlan(capacity_bytes=8)
        plan.put("big", (np.zeros(100),))
        assert "big" not in plan
        assert plan.n_entries == 0

    def test_default_budget_positive(self):
        from repro.perfmodel.capacity import plan_cache_budget

        assert MatvecPlan().capacity_bytes == plan_cache_budget()
        assert plan_cache_budget() > 0


class TestDistributedPlan:
    @pytest.mark.parametrize("method", ["naive", "batched", "pc"])
    @pytest.mark.parametrize("n_locales", [1, 3])
    def test_warm_matches_cold_and_serial(
        self, basis, expr, rng, method, n_locales
    ):
        group = chain_symmetries(12, momentum=0, parity=0, inversion=0)
        template = SymmetricBasis(group, hamming_weight=6, build=False)
        cluster = Cluster(n_locales, laptop_machine(cores=4))
        dbasis, _ = enumerate_states(cluster, template, chunks_per_core=3)
        serial_op = repro.Operator(expr, basis, plan=False)
        dop = DistributedOperator(expr, dbasis, method=method)
        for _ in range(2):  # cold pass populates the plan, warm replays it
            x = random_vector(basis, rng)
            dx = DistributedVector.from_serial(dbasis, basis, x)
            np.testing.assert_allclose(
                dop.matvec(dx).to_serial(basis),
                serial_op.matvec(x),
                atol=1e-12,
            )
        assert dop.plan.n_entries > 0
        dop.invalidate_plan()
        assert dop.plan.n_entries == 0

    def test_distributed_plan_hits_counted(self, basis, expr, rng):
        group = chain_symmetries(12, momentum=0, parity=0, inversion=0)
        template = SymmetricBasis(group, hamming_weight=6, build=False)
        cluster = Cluster(2, laptop_machine(cores=4))
        dbasis, _ = enumerate_states(cluster, template, chunks_per_core=3)
        dop = DistributedOperator(expr, dbasis, method="batched")
        x = random_vector(basis, rng)
        dx = DistributedVector.from_serial(dbasis, basis, x)
        tele = telemetry.Telemetry.enabled(trace=False)
        with telemetry.use(tele):
            dop.matvec(dx)
            assert tele.metrics.counter_total("plan.hits") == 0
            dop.matvec(dx)
        assert tele.metrics.counter_total("plan.hits") > 0


class TestAsMatvec:
    def test_operator_is_unwrapped(self, basis, expr, rng):
        op = repro.Operator(expr, basis)
        mv = as_matvec(op)
        assert mv == op.matvec
        x = random_vector(basis, rng)
        np.testing.assert_array_equal(mv(x), op.matvec(x))

    def test_plain_callable_passes_through(self):
        f = lambda x: x  # noqa: E731
        assert as_matvec(f) is f

    def test_non_callable_rejected(self):
        with pytest.raises(TypeError):
            as_matvec(42)


class TestEmptyBasisRanker:
    def test_sorted_ranker_empty_basis_raises_basis_error(self):
        from repro.basis.ranking import SortedRanker
        from repro.errors import BasisError

        ranker = SortedRanker(np.empty(0, dtype=np.uint64))
        with pytest.raises(BasisError, match="empty"):
            ranker.rank(np.array([3], dtype=np.uint64))
        assert ranker.rank(np.empty(0, dtype=np.uint64)).size == 0
        idx, found = ranker.try_rank(np.array([3], dtype=np.uint64))
        assert not found.any()
