"""Tests for the simulated MPI collectives."""

import numpy as np
import pytest

from repro.runtime import Cluster, SimMPI, laptop_machine


@pytest.fixture
def cluster():
    return Cluster(4, laptop_machine(cores=4))


class TestAlltoallv:
    def test_data_transposed(self, cluster, rng):
        mpi = SimMPI(cluster, ranks_per_locale=1)
        n = cluster.n_locales
        send = [
            [rng.standard_normal(rng.integers(0, 10)) for _ in range(n)]
            for _ in range(n)
        ]
        recv, elapsed = mpi.alltoallv(send)
        for src in range(n):
            for dst in range(n):
                assert np.array_equal(recv[dst][src], send[src][dst])
        assert elapsed > 0

    def test_charge_false_is_free(self, cluster):
        mpi = SimMPI(cluster)
        n = cluster.n_locales
        send = [[np.zeros(5) for _ in range(n)] for _ in range(n)]
        _, elapsed = mpi.alltoallv(send, charge=False)
        assert elapsed == 0.0

    def test_more_ranks_cost_more_latency(self, cluster):
        n = cluster.n_locales
        send = [[np.zeros(2) for _ in range(n)] for _ in range(n)]
        _, t_few = SimMPI(cluster, ranks_per_locale=1).alltoallv(send)
        _, t_many = SimMPI(cluster, ranks_per_locale=64).alltoallv(send)
        assert t_many > 10 * t_few

    def test_shape_validation(self, cluster):
        mpi = SimMPI(cluster)
        with pytest.raises(ValueError):
            mpi.alltoallv([[np.zeros(1)]])

    def test_exchange_cost_scales_with_bytes(self, cluster):
        mpi = SimMPI(cluster, ranks_per_locale=1)
        small = np.full((4, 4), 1e3)
        large = np.full((4, 4), 1e8)
        assert mpi.exchange_cost(large) > mpi.exchange_cost(small)


class TestAllreduce:
    def test_sums_across_locales(self, cluster):
        mpi = SimMPI(cluster)
        values = np.arange(8.0).reshape(4, 2)
        total, elapsed = mpi.allreduce(values)
        assert np.allclose(total, values.sum(axis=0))
        assert elapsed > 0

    def test_single_rank_is_free(self):
        cluster = Cluster(1, laptop_machine(cores=2))
        mpi = SimMPI(cluster, ranks_per_locale=1)
        total, elapsed = mpi.allreduce(np.array([[3.0]]))
        assert elapsed == 0.0
        assert total[0] == 3.0

    def test_latency_grows_logarithmically(self, cluster):
        v = np.zeros((4, 1))
        t_1 = SimMPI(cluster, ranks_per_locale=1).allreduce(v)[1]
        t_64 = SimMPI(cluster, ranks_per_locale=64).allreduce(v)[1]
        # log2(256)/log2(4) = 4
        assert t_64 / t_1 == pytest.approx(4.0, rel=0.05)


class TestBarrier:
    def test_single_rank_free(self):
        cluster = Cluster(1, laptop_machine())
        assert SimMPI(cluster, ranks_per_locale=1).barrier() == 0.0

    def test_grows_with_ranks(self, cluster):
        b1 = SimMPI(cluster, ranks_per_locale=1).barrier()
        b2 = SimMPI(cluster, ranks_per_locale=128).barrier()
        assert b2 > b1 > 0

    def test_rejects_bad_rank_count(self, cluster):
        with pytest.raises(ValueError):
            SimMPI(cluster, ranks_per_locale=0)

    def test_n_ranks(self, cluster):
        assert SimMPI(cluster, ranks_per_locale=16).n_ranks == 64


class TestCluster:
    def test_locale_count(self, cluster):
        assert cluster.n_locales == len(cluster) == 4
        assert cluster.total_cores == 16

    def test_default_machine_is_snellius(self):
        c = Cluster(2)
        assert c.machine.cores_per_locale == 128

    def test_rejects_zero_locales(self):
        with pytest.raises(ValueError):
            Cluster(0)

    def test_locale_indices(self, cluster):
        assert [loc.index for loc in cluster.locales] == [0, 1, 2, 3]
