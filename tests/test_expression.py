"""Tests for the symbolic spin-operator algebra."""

import numpy as np
import pytest

from repro.operators import (
    Expression,
    identity,
    number,
    sigma_minus,
    sigma_plus,
    sigma_x,
    sigma_y,
    sigma_z,
    spin_x,
    spin_y,
    spin_z,
)
from repro.operators.matrix import expression_to_dense


def dense(expr, n):
    return expression_to_dense(expr, n)


class TestSingleSiteAlgebra:
    def test_pauli_squares_are_identity(self):
        for op in (sigma_x, sigma_y, sigma_z):
            assert (op(0) * op(0)).isclose(identity())

    def test_pauli_commutator(self):
        # [sx, sy] = 2i sz
        lhs = sigma_x(0) * sigma_y(0) - sigma_y(0) * sigma_x(0)
        assert lhs.isclose(2j * sigma_z(0))

    def test_anticommutator_vanishes(self):
        lhs = sigma_x(0) * sigma_y(0) + sigma_y(0) * sigma_x(0)
        assert lhs.is_zero

    def test_raising_lowering(self):
        # s+ s- = P1 = number operator
        assert (sigma_plus(0) * sigma_minus(0)).isclose(number(0))
        # s- s+ = P0 = 1 - number
        assert (sigma_minus(0) * sigma_plus(0)).isclose(identity() - number(0))

    def test_raising_squared_is_zero(self):
        assert (sigma_plus(0) * sigma_plus(0)).is_zero

    def test_sz_from_projectors(self):
        assert sigma_z(0).isclose(2 * number(0) - identity())

    def test_spin_half_commutator(self):
        # [Sx, Sy] = i Sz
        lhs = spin_x(0) * spin_y(0) - spin_y(0) * spin_x(0)
        assert lhs.isclose(1j * spin_z(0))

    def test_casimir(self):
        # S^2 = 3/4 for spin-1/2
        s2 = (
            spin_x(0) * spin_x(0)
            + spin_y(0) * spin_y(0)
            + spin_z(0) * spin_z(0)
        )
        assert s2.isclose(0.75 * identity())


class TestMultiSite:
    def test_different_sites_commute(self):
        a = sigma_x(0) * sigma_y(3)
        b = sigma_y(3) * sigma_x(0)
        assert a.isclose(b)

    def test_heisenberg_term_canonical_form(self):
        term = (
            spin_z(0) * spin_z(1)
            + 0.5 * (sigma_plus(0) * sigma_minus(1) + sigma_minus(0) * sigma_plus(1))
        )
        # szsz expands to 4 projector strings; the ladder part to 2 strings
        assert term.n_terms == 6

    def test_sites_property(self):
        expr = sigma_x(1) * sigma_x(4) + sigma_z(2)
        assert expr.sites == {1, 2, 4}
        assert expr.min_sites == 5

    def test_translated(self):
        expr = sigma_plus(0) * sigma_minus(1)
        moved = expr.translated(3, 4)
        assert moved.sites == {3, 0}
        assert np.allclose(dense(moved, 4), dense(sigma_plus(3) * sigma_minus(0), 4))


class TestAlgebraLaws:
    def test_addition_collects_terms(self):
        assert (sigma_x(0) + sigma_x(0)).isclose(2 * sigma_x(0))

    def test_subtraction_cancels(self):
        assert (sigma_x(0) - sigma_x(0)).is_zero

    def test_scalar_multiplication(self):
        assert ((2.5 * sigma_z(1)) / 2.5).isclose(sigma_z(1))

    def test_sum_builtin_works(self):
        total = sum(sigma_z(i) for i in range(4))
        # four N strings plus one collected identity term (-4 I)
        assert total.n_terms == 5

    def test_distributivity_via_dense(self):
        a, b, c = sigma_x(0), sigma_y(1), sigma_z(0)
        n = 2
        lhs = dense(a * (b + c), n)
        rhs = dense(a * b + a * c, n)
        assert np.allclose(lhs, rhs)

    def test_associativity_via_dense(self):
        a, b, c = sigma_plus(0), sigma_minus(1), sigma_z(2)
        n = 3
        assert np.allclose(dense((a * b) * c, n), dense(a * (b * c), n))

    def test_matmul_alias(self):
        assert (sigma_x(0) @ sigma_x(0)).isclose(identity())

    def test_scalar_addition(self):
        expr = sigma_z(0) + 1.0
        assert np.allclose(dense(expr, 1), dense(sigma_z(0), 1) + np.eye(2))

    def test_rsub(self):
        expr = 1.0 - number(0)
        assert expr.isclose(sigma_minus(0) * sigma_plus(0))


class TestAdjoint:
    def test_pauli_are_hermitian(self):
        for op in (sigma_x, sigma_y, sigma_z):
            assert op(0).is_hermitian()

    def test_ladder_adjoint(self):
        assert sigma_plus(0).adjoint().isclose(sigma_minus(0))

    def test_product_adjoint_via_dense(self):
        expr = (1 + 2j) * sigma_plus(0) * sigma_z(1)
        n = 2
        assert np.allclose(dense(expr.adjoint(), n), dense(expr, n).conj().T)

    def test_heisenberg_is_hermitian(self):
        from repro.operators import heisenberg_chain

        assert heisenberg_chain(8).is_hermitian()

    def test_non_hermitian_detected(self):
        assert not sigma_plus(0).is_hermitian()


class TestDenseAgainstKron:
    def test_sigma_z_matrix(self):
        m = dense(sigma_z(0), 1)
        # basis order |down>=index 0, |up>=index 1 (bit set = up)
        assert np.allclose(m, np.diag([-1.0, 1.0]))

    def test_sigma_x_matrix(self):
        assert np.allclose(dense(sigma_x(0), 1), np.array([[0, 1], [1, 0]]))

    def test_sigma_y_matrix(self):
        # In (down, up) index order with sigma_z = diag(-1, 1), sigma_y is
        # [[0, i], [-i, 0]] so that the Pauli commutation relations hold.
        assert np.allclose(
            dense(sigma_y(0), 1), np.array([[0, 1j], [-1j, 0]])
        )

    def test_site_ordering_in_kron(self):
        # sigma_z on site 1 of 2: acts on bit 1 (slow index)
        m = dense(sigma_z(1), 2)
        assert np.allclose(np.diag(m), [-1, -1, 1, 1])

    def test_repr_smoke(self):
        assert "Expression" in repr(sigma_x(0) + 2.0)
        assert repr(Expression()) == "Expression(0)"


class TestValidation:
    def test_site_range(self):
        with pytest.raises(ValueError):
            sigma_x(-1)
        with pytest.raises(ValueError):
            sigma_x(64)

    def test_is_real_canonical(self):
        assert (sigma_y(0) * sigma_y(1)).is_real
        assert not sigma_y(0).is_real
