"""Tests for the fault-injection runtime, the self-healing matvec, and
checkpoint/restart of the Krylov solvers.

The resilience contract under test (docs/RESILIENCE.md): under any seeded
fault plan every matvec either recovers to the fault-free result or raises
a typed FaultError; fault injection is deterministic per seed; a solver
killed mid-iteration and resumed from its checkpoint continues bit-for-bit
identically; and corrupted state on disk is detected, never silently
loaded.
"""

import json
import shutil
import threading

import numpy as np
import pytest

import repro
from repro import telemetry
from repro.basis import SpinBasis
from repro.distributed import (
    DistributedOperator,
    DistributedVector,
    enumerate_states,
)
from repro.distributed.vector import DistributedVectorSpace
from repro.errors import CheckpointError, ConvergenceError, FaultError
from repro.linalg.davidson import davidson
from repro.linalg.lanczos import lanczos, lanczos_distributed
from repro.resilience import (
    FaultPlan,
    ResilienceConfig,
    latest_checkpoint,
    list_checkpoints,
    load_latest_checkpoint,
    write_checkpoint,
)
from repro.runtime import Cluster, laptop_machine
from repro.telemetry import Telemetry

CHAOS_PLANS = [
    dict(seed=11, drop=0.05, delay=0.2, max_delay=1e-4),
    dict(seed=12, duplicate=0.06, corrupt=0.03),
    dict(seed=13, drop=0.03, duplicate=0.03, corrupt=0.02, delay=0.1,
         max_delay=5e-5, stragglers={1: 2.0}),
    dict(seed=14, crashes={2: 1e-5}),
]


def make_dbasis(n_locales=4, cores=8, n=10, weight=5, faults=None,
                resilience=None):
    cluster = Cluster(
        n_locales, laptop_machine(cores=cores), faults=faults,
        resilience=resilience,
    )
    dbasis, _ = enumerate_states(
        cluster, SpinBasis(n, hamming_weight=weight),
        use_weight_shortcut=True,
    )
    return dbasis


@pytest.fixture(scope="module")
def setup():
    dbasis = make_dbasis()
    expr = repro.heisenberg_chain(10)
    x = DistributedVector.full_random(dbasis, seed=7)
    return dbasis, expr, x


class TestFaultPlan:
    def test_same_seed_same_fates(self):
        a = FaultPlan(seed=42, drop=0.1, duplicate=0.1, corrupt=0.1,
                      delay=0.2, max_delay=1e-3)
        b = FaultPlan(seed=42, drop=0.1, duplicate=0.1, corrupt=0.1,
                      delay=0.2, max_delay=1e-3)
        fates_a = [a.message_fate(0, 1) for _ in range(200)]
        fates_b = [b.message_fate(0, 1) for _ in range(200)]
        assert fates_a == fates_b
        assert any(f.drop for f in fates_a)
        assert any(f.duplicate for f in fates_a)
        assert any(f.corrupt for f in fates_a)

    def test_fresh_rewinds(self):
        plan = FaultPlan(seed=3, drop=0.2)
        first = [plan.message_fate(0, 1) for _ in range(50)]
        rewound = plan.fresh()
        again = [rewound.message_fate(0, 1) for _ in range(50)]
        assert first == again

    def test_crashes_are_one_shot(self):
        plan = FaultPlan(seed=0, crashes={1: 0.5})
        assert plan.take_crashes() == {1: 0.5}
        assert plan.take_crashes() == {}

    def test_config_roundtrip(self):
        plan = FaultPlan(seed=9, drop=0.01, duplicate=0.02, delay=0.03,
                         max_delay=1e-4, corrupt=0.04,
                         stragglers={2: 1.5}, crashes={0: 0.25})
        clone = FaultPlan.from_config(plan.to_config())
        assert clone.to_config() == plan.to_config()
        assert clone.stragglers == {2: 1.5}
        assert clone.take_crashes() == {0: 0.25}

    def test_unknown_config_key_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            FaultPlan.from_config({"seed": 1, "droop": 0.5})

    def test_resilience_config_validation(self):
        with pytest.raises(ValueError):
            ResilienceConfig(ack_timeout=0.0)
        with pytest.raises(ValueError):
            ResilienceConfig(backoff=0.5)
        with pytest.raises(ValueError):
            ResilienceConfig(max_retries=-1)


class TestDeterministicInjection:
    def test_same_seed_identical_run(self, setup):
        """Two runs with fresh copies of one plan agree on the result, the
        simulated time, and every fault/recovery metric count."""
        dbasis, expr, x = setup
        plan = FaultPlan(seed=5, drop=0.04, duplicate=0.04, corrupt=0.02,
                         delay=0.1, max_delay=1e-4)

        def run(p):
            tele = Telemetry.enabled()
            with telemetry.use(tele):
                op = DistributedOperator(expr, dbasis, method="pc", faults=p)
                y = op.matvec(x)
            snap = tele.metrics.snapshot()
            counts = {
                name: snap.counter_total(name)
                for name in (
                    "fault.drops", "fault.duplicates", "fault.corruptions",
                    "fault.delays", "fault.timeouts",
                    "recovery.retransmits", "recovery.checksum_rejects",
                    "recovery.duplicates_discarded",
                )
            }
            return y, op.last_report.elapsed, counts

        y1, t1, c1 = run(plan.fresh())
        y2, t2, c2 = run(plan.fresh())
        assert t1 == t2
        assert c1 == c2
        assert c1["recovery.retransmits"] > 0
        for a, b in zip(y1.parts, y2.parts):
            np.testing.assert_array_equal(a, b)


class TestChaosSweep:
    @pytest.mark.parametrize("method", ["naive", "batched", "pc"])
    @pytest.mark.parametrize("spec", CHAOS_PLANS,
                             ids=[f"plan{p['seed']}" for p in CHAOS_PLANS])
    def test_recovers_or_raises_typed_fault(self, setup, method, spec):
        dbasis, expr, x = setup
        reference_op = DistributedOperator(expr, dbasis, method=method)
        reference = reference_op.matvec(x)
        op = DistributedOperator(
            expr, dbasis, method=method, faults=FaultPlan(**spec)
        )
        try:
            y = op.matvec(x)
        except FaultError:
            return  # typed failure is an acceptable outcome — never a hang
        err = max(
            float(np.abs(a - b).max())
            for a, b in zip(y.parts, reference.parts)
        )
        assert err <= 1e-10
        assert op.last_report.extras.get("resilient") == 1.0

    def test_corruption_without_checksums_rejected(self, setup):
        dbasis, expr, x = setup
        op = DistributedOperator(
            expr, dbasis, method="pc",
            faults=FaultPlan(seed=1, corrupt=0.1),
            resilience=ResilienceConfig(checksums=False),
        )
        with pytest.raises(ValueError, match="checksum"):
            op.matvec(x)

    def test_pc_crash_falls_back_to_batched(self, setup):
        dbasis, expr, x = setup
        reference = DistributedOperator(expr, dbasis, method="pc").matvec(x)
        tele = Telemetry.enabled()
        with telemetry.use(tele):
            op = DistributedOperator(
                expr, dbasis, method="pc",
                faults=FaultPlan(seed=2, crashes={1: 1e-6}),
            )
            y = op.matvec(x)
        assert op.last_report.extras.get("fallback") == 1.0
        assert tele.metrics.snapshot().counter_total("recovery.fallbacks") == 1
        for a, b in zip(y.parts, reference.parts):
            np.testing.assert_allclose(a, b, atol=1e-12)

    def test_exhausted_budgets_raise(self, setup):
        dbasis, expr, x = setup
        op = DistributedOperator(
            expr, dbasis, method="naive",
            faults=FaultPlan(seed=2, crashes={0: 1e-6}),
            resilience=ResilienceConfig(
                fallback_to_batched=False, matvec_restarts=0
            ),
        )
        with pytest.raises(FaultError):
            op.matvec(x)

    def test_cluster_attaches_faults_to_operator(self):
        plan = FaultPlan(seed=4, drop=0.02)
        dbasis = make_dbasis(faults=plan)
        op = DistributedOperator(repro.heisenberg_chain(10), dbasis)
        assert op.faults is plan
        assert op.resilience is not None


class _KillSwitch:
    """Wraps an operator; raises after a set number of matvecs (SIGKILL
    stand-in for 'the job died mid-iteration')."""

    def __init__(self, operator, survive: int) -> None:
        self.operator = operator
        self.survive = survive
        self.calls = 0

    def matvec(self, v):
        self.calls += 1
        if self.calls > self.survive:
            raise KeyboardInterrupt("killed mid-iteration")
        return self.operator.matvec(v)


class _ArmedCrash:
    """Wraps an operator; arms a seeded crash plan after ``survive``
    successful products.  Unlike :class:`_KillSwitch` the test does not
    raise anything itself — the fault layer kills the worker and
    escalates the typed :class:`FaultError`."""

    def __init__(self, operator, plan, survive: int) -> None:
        self.operator = operator
        self.plan = plan
        self.survive = survive
        self.calls = 0

    def matvec(self, v):
        self.calls += 1
        if self.calls > self.survive and self.operator.faults is None:
            self.operator.faults = self.plan
            self.operator.resilience = ResilienceConfig(
                matvec_restarts=0, fallback_to_batched=False
            )
        return self.operator.matvec(v)


class TestCheckpointRestart:
    def test_lanczos_distributed_resume_bit_identical(self, setup, tmp_path):
        """A distributed Lanczos killed mid-iteration and resumed produces
        bit-identical eigenvalues and iteration count (acceptance test)."""
        dbasis, expr, _ = setup
        op = DistributedOperator(expr, dbasis)
        uninterrupted, _ = lanczos_distributed(op, k=1, seed=3, tol=1e-11)

        ckpt = tmp_path / "krylov"
        space = DistributedVectorSpace(dbasis)
        v0 = DistributedVector.full_random(dbasis, seed=3)
        killed = _KillSwitch(DistributedOperator(expr, dbasis), survive=12)
        with pytest.raises(KeyboardInterrupt):
            lanczos(killed.matvec, v0, k=1, tol=1e-11, space=space,
                    checkpoint_dir=ckpt, checkpoint_every=4)
        assert list_checkpoints(ckpt)

        resumed_op = DistributedOperator(expr, dbasis)
        resumed = lanczos(resumed_op.matvec, v0, k=1, tol=1e-11, space=space,
                          checkpoint_dir=ckpt, resume=True)
        np.testing.assert_array_equal(
            resumed.eigenvalues, uninterrupted.eigenvalues
        )
        assert resumed.n_iterations == uninterrupted.n_iterations
        np.testing.assert_array_equal(resumed.alphas, uninterrupted.alphas)
        np.testing.assert_array_equal(resumed.betas, uninterrupted.betas)

    def test_serial_lanczos_resume_bit_identical(self, tmp_path):
        basis = SpinBasis(12, hamming_weight=6)
        op = repro.Operator(repro.heisenberg_chain(12), basis)
        v0 = np.random.default_rng(0).standard_normal(basis.dim)
        reference = lanczos(op, v0, k=2, tol=1e-12)

        killed = _KillSwitch(op, survive=20)
        with pytest.raises(KeyboardInterrupt):
            lanczos(killed.matvec, v0, k=2, tol=1e-12,
                    checkpoint_dir=tmp_path, checkpoint_every=5)
        resumed = lanczos(op, v0, k=2, tol=1e-12,
                          checkpoint_dir=tmp_path, resume=True)
        np.testing.assert_array_equal(
            resumed.eigenvalues, reference.eigenvalues
        )
        assert resumed.n_iterations == reference.n_iterations

    def test_davidson_resume_bit_identical(self, tmp_path):
        basis = SpinBasis(12, hamming_weight=6)
        op = repro.Operator(repro.heisenberg_chain(12), basis)
        diag = op.diagonal()
        reference = davidson(op, diag, k=2, seed=5, tol=1e-10)

        killed = _KillSwitch(op, survive=25)
        with pytest.raises(KeyboardInterrupt):
            davidson(killed.matvec, diag, k=2, seed=5, tol=1e-10,
                     checkpoint_dir=tmp_path, checkpoint_every=3)
        resumed = davidson(op, diag, k=2, seed=5, tol=1e-10,
                           checkpoint_dir=tmp_path, resume=True)
        np.testing.assert_array_equal(
            resumed.eigenvalues, reference.eigenvalues
        )
        assert resumed.n_iterations == reference.n_iterations

    def test_resume_without_dir_rejected(self):
        basis = SpinBasis(8, hamming_weight=4)
        op = repro.Operator(repro.heisenberg_chain(8), basis)
        v0 = np.ones(basis.dim)
        with pytest.raises(CheckpointError, match="checkpoint_dir"):
            lanczos(op, v0, k=1, resume=True, raise_on_no_convergence=False)

    def test_resume_from_empty_dir_is_cold_start(self, tmp_path):
        basis = SpinBasis(10, hamming_weight=5)
        op = repro.Operator(repro.heisenberg_chain(10), basis)
        v0 = np.random.default_rng(1).standard_normal(basis.dim)
        cold = lanczos(op, v0, k=1, tol=1e-10)
        warm = lanczos(op, v0, k=1, tol=1e-10,
                       checkpoint_dir=tmp_path, resume=True)
        np.testing.assert_array_equal(cold.eigenvalues, warm.eigenvalues)

    def test_checkpoints_pruned_to_keep(self, tmp_path):
        for iteration in range(1, 6):
            write_checkpoint(
                tmp_path, iteration,
                arrays={"x": np.arange(3.0) * iteration},
            )
        names = [p.name for p in list_checkpoints(tmp_path)]
        assert names == ["ckpt-000004", "ckpt-000005"]

    def test_corrupt_newest_falls_back_to_previous(self, tmp_path):
        tele = Telemetry.enabled()
        with telemetry.use(tele):
            write_checkpoint(tmp_path, 1, arrays={"x": np.arange(4.0)})
            write_checkpoint(tmp_path, 2, arrays={"x": np.arange(4.0) * 2})
            newest = latest_checkpoint(tmp_path)
            blob = (newest / "state.npz").read_bytes()
            (newest / "state.npz").write_bytes(
                blob[:-4] + bytes(4 * [0x55])
            )
            state = load_latest_checkpoint(tmp_path)
        assert state.iteration == 1
        snap = tele.metrics.snapshot()
        assert snap.counter_total("checkpoint.skipped_corrupt") == 1

    def test_all_corrupt_raises(self, tmp_path):
        write_checkpoint(tmp_path, 1, arrays={"x": np.arange(4.0)})
        newest = latest_checkpoint(tmp_path)
        (newest / "manifest.json").write_text("{ not json")
        with pytest.raises(CheckpointError, match="no loadable checkpoint"):
            load_latest_checkpoint(tmp_path)

    def test_missing_file_detected(self, tmp_path):
        write_checkpoint(tmp_path, 3, arrays={"x": np.arange(4.0)})
        newest = latest_checkpoint(tmp_path)
        (newest / "state.npz").unlink()
        with pytest.raises(CheckpointError, match="no loadable checkpoint"):
            load_latest_checkpoint(tmp_path)

    def test_distributed_vector_chunk_corruption_detected(
        self, setup, tmp_path
    ):
        from repro.io.vectors import (
            load_distributed_vector,
            save_distributed_vector,
        )

        dbasis, _, x = setup
        save_distributed_vector(tmp_path, x)
        chunk = next(tmp_path.glob("*.npy"))
        blob = bytearray(chunk.read_bytes())
        blob[-1] ^= 0xFF
        chunk.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError, match="CRC32"):
            load_distributed_vector(tmp_path, dbasis)


class TestThreadsCheckpointResume:
    """Checkpoint/resume driven through the real threads backend: a
    seeded crash schedule kills the worker mid-Lanczos, and the resumed
    run reproduces an uninterrupted sim run bit-for-bit.

    Single-locale on purpose: the shared-memory matvec is sequential, so
    its arithmetic is identical on both backends and bit-identicality is
    well-defined (the multi-locale threads scatter-add is exact only to
    rounding because accumulation order depends on thread scheduling).
    """

    @staticmethod
    def _make(backend):
        cluster = Cluster(1, laptop_machine(cores=4), backend=backend)
        dbasis, _ = enumerate_states(
            cluster, SpinBasis(10, hamming_weight=5),
            use_weight_shortcut=True,
        )
        return dbasis

    def test_threads_crash_mid_lanczos_resume_matches_sim(self, tmp_path):
        expr = repro.heisenberg_chain(10)
        sim_basis = self._make("sim")
        reference = lanczos(
            DistributedOperator(expr, sim_basis, method="pc").matvec,
            DistributedVector.full_random(sim_basis, seed=3),
            k=1, tol=1e-11, space=DistributedVectorSpace(sim_basis),
        )

        tbasis = self._make("threads")
        tspace = DistributedVectorSpace(tbasis)
        tv0 = DistributedVector.full_random(tbasis, seed=3)
        armed = _ArmedCrash(
            DistributedOperator(expr, tbasis, method="pc"),
            plan=FaultPlan(seed=9, crashes={0: 1e-6}),
            survive=12,
        )
        ckpt = tmp_path / "krylov"
        with pytest.raises(FaultError):
            lanczos(armed.matvec, tv0, k=1, tol=1e-11, space=tspace,
                    checkpoint_dir=ckpt, checkpoint_every=4)
        assert armed.calls > 12, "crash must land mid-run, not at startup"
        assert list_checkpoints(ckpt), "checkpoints must predate the crash"

        resumed = lanczos(
            DistributedOperator(expr, tbasis, method="pc").matvec,
            tv0, k=1, tol=1e-11, space=tspace,
            checkpoint_dir=ckpt, resume=True,
        )
        np.testing.assert_array_equal(
            resumed.eigenvalues, reference.eigenvalues
        )
        assert resumed.n_iterations == reference.n_iterations
        np.testing.assert_array_equal(resumed.alphas, reference.alphas)
        np.testing.assert_array_equal(resumed.betas, reference.betas)


class TestConcurrentCheckpointWriters:
    """Checkpointing one directory from several threads at once: the
    ``.lock`` file serializes writers, and readers treat a checkpoint
    pruned out from under them as skippable, never as a crash."""

    def test_concurrent_writers_with_pruning(self, tmp_path):
        from repro.resilience import load_latest_checkpoint

        errors = []
        stop = threading.Event()

        def writer(offset):
            try:
                for i in range(8):
                    write_checkpoint(
                        tmp_path,
                        offset * 100 + i,
                        arrays={"x": np.full(64, float(offset * 100 + i))},
                        meta={"writer": offset},
                        keep=2,
                    )
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        def reader():
            while not stop.is_set():
                try:
                    state = load_latest_checkpoint(tmp_path)
                    assert float(state.arrays["x"][0]) == state.iteration
                except CheckpointError:
                    pass  # nothing committed yet / everything mid-prune
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(w,)) for w in range(4)
        ] + [threading.Thread(target=reader)]
        for t in threads:
            t.start()
        for t in threads[:-1]:
            t.join()
        stop.set()
        threads[-1].join()
        assert not errors
        # Every writer pruned to keep=2 on its way out, under the lock:
        # exactly the two newest checkpoints survive, both loadable.
        names = [p.name for p in list_checkpoints(tmp_path)]
        assert len(names) == 2
        state = load_latest_checkpoint(tmp_path)
        assert float(state.arrays["x"][0]) == state.iteration

    def test_vanished_checkpoint_is_skipped_not_fatal(self, tmp_path):
        """A checkpoint deleted between the manifest read and the file
        hashing (a concurrent keep-N prune) reads as corrupt."""
        from repro.resilience import load_checkpoint

        write_checkpoint(tmp_path, 1, arrays={"x": np.arange(4.0)})
        write_checkpoint(tmp_path, 2, arrays={"x": np.arange(4.0) * 2})
        newest = latest_checkpoint(tmp_path)
        # Keep the manifest but remove a payload mid-"load": the CRC pass
        # hits FileNotFoundError, which must surface as CheckpointError.
        (newest / "state.npz").unlink()
        with pytest.raises(CheckpointError):
            load_checkpoint(newest)
        state = load_latest_checkpoint(tmp_path)
        assert state.iteration == 1


class TestTypedErrors:
    def test_convergence_error_carries_diagnostics(self):
        basis = SpinBasis(12, hamming_weight=6)
        op = repro.Operator(repro.heisenberg_chain(12), basis)
        v0 = np.random.default_rng(2).standard_normal(basis.dim)
        with pytest.raises(ConvergenceError) as excinfo:
            lanczos(op, v0, k=1, tol=1e-14, max_iter=5)
        assert excinfo.value.n_iterations == 5
        assert excinfo.value.last_residual > 0

    def test_davidson_convergence_error_diagnostics(self):
        basis = SpinBasis(10, hamming_weight=5)
        op = repro.Operator(repro.heisenberg_chain(10), basis)
        with pytest.raises(ConvergenceError) as excinfo:
            davidson(op, op.diagonal(), k=1, tol=1e-14, max_iter=3)
        assert excinfo.value.n_iterations == 3
        assert excinfo.value.last_residual > 0

    def test_fault_error_is_repro_error(self):
        from repro.errors import DeadlockError, ReproError

        assert issubclass(FaultError, ReproError)
        assert issubclass(DeadlockError, FaultError)
        assert issubclass(DeadlockError, RuntimeError)


class TestConfigIntegration:
    def test_faulty_cluster_section_recovers(self):
        spec = {
            "n_sites": 10,
            "hamiltonian": {"model": "heisenberg_chain"},
            "basis": {"hamming_weight": 5},
            "solver": {"k": 1, "tol": 1e-10},
            "cluster": {
                "n_locales": 4,
                "machine": "laptop",
                "faults": {"seed": 3, "drop": 0.02, "duplicate": 0.02,
                           "corrupt": 0.01, "delay": 0.05,
                           "max_delay": 1e-4},
            },
        }
        faulty = repro.run_simulation(repro.load_simulation(spec), seed=1)
        serial = repro.run_simulation(
            repro.load_simulation(
                {k: v for k, v in spec.items() if k != "cluster"}
            ),
            seed=1,
        )
        assert faulty["converged"]
        assert faulty["eigenvalues"][0] == pytest.approx(
            serial["eigenvalues"][0], abs=1e-9
        )

    def test_checkpoint_section_and_resume(self, tmp_path):
        spec = {
            "n_sites": 10,
            "hamiltonian": {"model": "heisenberg_chain"},
            "basis": {"hamming_weight": 5},
            "solver": {
                "k": 1, "tol": 1e-10,
                "checkpoint": {"dir": str(tmp_path), "every": 5},
            },
        }
        first = repro.run_simulation(repro.load_simulation(spec), seed=1)
        assert list_checkpoints(tmp_path)
        spec["solver"]["checkpoint"]["resume"] = True
        resumed = repro.run_simulation(repro.load_simulation(spec), seed=1)
        assert resumed["eigenvalues"] == first["eigenvalues"]

    def test_cli_faults_flag(self, tmp_path, capsys):
        from repro.config import main

        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps({"seed": 3, "drop": 0.02}))
        input_path = tmp_path / "input.json"
        input_path.write_text(json.dumps({
            "n_sites": 8,
            "hamiltonian": {"model": "heisenberg_chain"},
            "basis": {"hamming_weight": 4},
            "solver": {"k": 1, "tol": 1e-10},
            "cluster": {"n_locales": 2, "machine": "laptop"},
        }))
        main([str(input_path), "--faults", str(plan_path)])
        out = json.loads(capsys.readouterr().out)
        assert out["converged"]
