"""Tests for the finite-temperature Lanczos method."""

import numpy as np
import pytest

import repro
from repro.basis import SpinBasis
from repro.linalg import ftlm_thermal


@pytest.fixture(scope="module")
def small_system():
    basis = SpinBasis(8, hamming_weight=4)
    op = repro.Operator(repro.heisenberg_chain(8), basis)
    evals = np.linalg.eigvalsh(op.to_dense())
    return basis, op, evals


def exact_energy(evals, t):
    boltz = np.exp(-(evals - evals.min()) / t)
    return float((evals * boltz).sum() / boltz.sum())


def exact_specific_heat(evals, t):
    boltz = np.exp(-(evals - evals.min()) / t)
    e = (evals * boltz).sum() / boltz.sum()
    e2 = (evals**2 * boltz).sum() / boltz.sum()
    return float((e2 - e**2) / t**2)


class TestAgainstExactThermal:
    def test_energy_across_temperatures(self, small_system):
        basis, op, evals = small_system
        ts = np.array([0.25, 0.5, 1.0, 2.0, 10.0])
        est = ftlm_thermal(
            op.matvec,
            np.zeros(basis.dim),
            ts,
            krylov_dim=60,
            n_samples=60,
            seed=0,
        )
        for i, t in enumerate(ts):
            assert est.energy[i] == pytest.approx(
                exact_energy(evals, t), abs=0.12
            )

    def test_specific_heat_shape(self, small_system):
        basis, op, evals = small_system
        ts = np.linspace(0.2, 3.0, 12)
        est = ftlm_thermal(
            op.matvec,
            np.zeros(basis.dim),
            ts,
            krylov_dim=60,
            n_samples=60,
            seed=1,
        )
        exact = np.array([exact_specific_heat(evals, t) for t in ts])
        # the specific-heat peak position must match within a grid step
        assert abs(
            ts[np.argmax(est.specific_heat)] - ts[np.argmax(exact)]
        ) <= (ts[1] - ts[0]) + 1e-12

    def test_partition_function_high_temperature(self, small_system):
        # As T -> inf, Z -> dim.
        basis, op, _ = small_system
        est = ftlm_thermal(
            op.matvec,
            np.zeros(basis.dim),
            np.array([1000.0]),
            krylov_dim=40,
            n_samples=40,
            seed=2,
        )
        assert est.partition_function[0] == pytest.approx(basis.dim, rel=0.1)

    def test_low_temperature_limit_is_ground_state(self, small_system):
        basis, op, evals = small_system
        est = ftlm_thermal(
            op.matvec,
            np.zeros(basis.dim),
            np.array([0.02]),
            krylov_dim=60,
            n_samples=20,
            seed=3,
        )
        assert est.energy[0] == pytest.approx(evals[0], abs=1e-3)


class TestInterface:
    def test_rejects_nonpositive_temperature(self, small_system):
        basis, op, _ = small_system
        with pytest.raises(ValueError):
            ftlm_thermal(op.matvec, np.zeros(basis.dim), np.array([0.0]))

    def test_deterministic_with_seed(self, small_system):
        basis, op, _ = small_system
        kwargs = dict(krylov_dim=20, n_samples=5, seed=7)
        a = ftlm_thermal(
            op.matvec, np.zeros(basis.dim), np.array([1.0]), **kwargs
        )
        b = ftlm_thermal(
            op.matvec, np.zeros(basis.dim), np.array([1.0]), **kwargs
        )
        assert a.energy[0] == b.energy[0]

    def test_metadata(self, small_system):
        basis, op, _ = small_system
        est = ftlm_thermal(
            op.matvec,
            np.zeros(basis.dim),
            np.array([1.0]),
            krylov_dim=15,
            n_samples=3,
        )
        assert est.krylov_dim == 15
        assert est.n_samples == 3
