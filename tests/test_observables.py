"""Tests for operator symmetrization and sector observables."""

import numpy as np
import pytest

import repro
from repro.basis import SpinBasis, SymmetricBasis
from repro.operators import (
    expectation,
    spin_correlation,
    symmetrize_expression,
    transform_expression,
)
from repro.operators.matrix import expression_to_dense
from repro.symmetry import Permutation, chain_symmetries


class TestTransformExpression:
    def test_permutation_moves_sites(self):
        perm = Permutation([1, 2, 0])
        moved = transform_expression(repro.sigma_z(0), perm)
        assert moved.isclose(repro.sigma_z(1))

    def test_matches_dense_conjugation(self, rng):
        n = 4
        perm = Permutation([2, 3, 1, 0])
        expr = (
            repro.spin_plus(0) * repro.spin_minus(2)
            + 0.3 * repro.sigma_z(1) * repro.sigma_z(3)
        )
        moved = transform_expression(expr, perm)
        # dense: U O U^dag with U the permutation operator on states
        states = np.arange(1 << n, dtype=np.uint64)
        rows = perm(states).astype(np.int64)
        u = np.zeros((1 << n, 1 << n))
        u[rows, np.arange(1 << n)] = 1.0
        lhs = expression_to_dense(moved, n)
        rhs = u @ expression_to_dense(expr, n) @ u.T
        assert np.allclose(lhs, rhs)

    def test_flip_conjugation_ladder(self):
        perm = Permutation.identity(2)
        flipped = transform_expression(repro.sigma_plus(0), perm, flip=True)
        assert flipped.isclose(repro.sigma_minus(0))

    def test_flip_conjugation_number(self):
        from repro.operators.expression import identity

        perm = Permutation.identity(1)
        flipped = transform_expression(repro.number(0), perm, flip=True)
        assert flipped.isclose(identity() - repro.number(0))

    def test_flip_matches_dense(self):
        from repro.bits import flip_all

        n = 3
        expr = repro.spin_z(0) * repro.spin_z(1) + repro.spin_x(2)
        moved = transform_expression(expr, Permutation.identity(n), flip=True)
        states = np.arange(1 << n, dtype=np.uint64)
        rows = flip_all(states, n).astype(np.int64)
        u = np.zeros((1 << n, 1 << n))
        u[rows, np.arange(1 << n)] = 1.0
        assert np.allclose(
            expression_to_dense(moved, n),
            u @ expression_to_dense(expr, n) @ u.T,
        )


class TestSymmetrize:
    def test_result_commutes_with_group(self):
        n = 6
        group = chain_symmetries(n, momentum=0, parity=0, inversion=0)
        bar = symmetrize_expression(repro.spin_z(0) * repro.spin_z(2), group)
        dense = expression_to_dense(bar, n)
        states = np.arange(1 << n, dtype=np.uint64)
        for i in range(len(group)):
            rows = group.apply_element(i, states).astype(np.int64)
            u = np.zeros_like(dense)
            u[rows, np.arange(1 << n)] = 1.0
            assert np.allclose(u @ dense, dense @ u)

    def test_invariant_operator_unchanged(self):
        n = 6
        group = chain_symmetries(n, momentum=0, parity=0, inversion=0)
        h = repro.heisenberg_chain(n)
        assert symmetrize_expression(h, group).isclose(h)

    def test_average_of_translations(self):
        n = 4
        group = chain_symmetries(n, momentum=0, parity=None, inversion=None)
        bar = symmetrize_expression(repro.sigma_z(0), group)
        expected = sum(repro.sigma_z(i) for i in range(n)) * (1.0 / n)
        assert bar.isclose(expected)


class TestSectorExpectation:
    @pytest.fixture(scope="class")
    def ground_states(self):
        n, w = 12, 6
        group = chain_symmetries(n, momentum=0, parity=0, inversion=0)
        sb = SymmetricBasis(group, hamming_weight=w)
        sop = repro.Operator(repro.heisenberg_chain(n), sb)
        sres = repro.lanczos(
            sop.matvec,
            np.random.default_rng(0).standard_normal(sb.dim),
            k=1,
            compute_eigenvectors=True,
        )
        ub = SpinBasis(n, hamming_weight=w)
        uop = repro.Operator(repro.heisenberg_chain(n), ub)
        ures = repro.lanczos(
            uop.matvec,
            np.random.default_rng(1).standard_normal(ub.dim),
            k=1,
            compute_eigenvectors=True,
            max_iter=400,
        )
        return n, sb, sres.eigenvectors[0], ub, ures.eigenvectors[0], sres.eigenvalues[0]

    @pytest.mark.parametrize("distance", [1, 2, 3, 4, 5, 6])
    def test_correlators_match_plain_basis(self, ground_states, distance):
        n, sb, gs_symm, ub, gs_u1, _ = ground_states
        c_symm = spin_correlation(sb, gs_symm, distance)
        c_u1 = spin_correlation(ub, gs_u1, distance)
        assert c_symm == pytest.approx(c_u1, abs=1e-8)

    def test_correlations_alternate_in_sign(self, ground_states):
        # antiferromagnet: <S_0 . S_r> alternates with distance
        n, sb, gs, *_ = ground_states
        signs = [np.sign(spin_correlation(sb, gs, r)) for r in range(1, 6)]
        assert signs == [-1, 1, -1, 1, -1]

    def test_bond_energy_sums_to_ground_energy(self, ground_states):
        n, sb, gs, _, _, e0 = ground_states
        assert n * spin_correlation(sb, gs, 1) == pytest.approx(e0, abs=1e-8)

    def test_expectation_plain_basis_no_symmetrization(self, rng):
        basis = SpinBasis(8, hamming_weight=4)
        op = repro.Operator(repro.heisenberg_chain(8), basis)
        x = rng.standard_normal(basis.dim)
        val = expectation(repro.heisenberg_chain(8), basis, x)
        assert np.real(val) == pytest.approx(np.real(op.expectation(x)))
