"""Tests for the expression-to-kernel compiler."""

import numpy as np
import pytest

from repro.errors import CompilationError
from repro.operators import (
    compile_expression,
    heisenberg_chain,
    number,
    sigma_minus,
    sigma_plus,
    sigma_x,
    sigma_y,
    sigma_z,
    spin_z,
    transverse_field_ising,
)


class TestPrimitiveExtraction:
    def test_diagonal_term(self):
        op = compile_expression(number(2), n_sites=4)
        assert op.n_diag_primitives == 1
        assert op.n_off_diag_primitives == 0
        assert int(op.diag_masks[0]) == 0b100
        assert int(op.diag_patterns[0]) == 0b100

    def test_hopping_term(self):
        op = compile_expression(sigma_plus(0) * sigma_minus(1), n_sites=2)
        assert op.n_off_diag_primitives == 1
        assert int(op.off_masks[0]) == 0b11
        assert int(op.off_patterns[0]) == 0b10  # needs site0 down, site1 up
        assert int(op.off_flips[0]) == 0b11

    def test_duplicate_primitives_merged(self):
        expr = sigma_x(0) + sigma_x(0)
        op = compile_expression(expr, n_sites=1)
        assert op.n_off_diag_primitives == 2  # UP and DN strings
        assert np.allclose(np.abs(op.off_coeffs), 2.0)

    def test_cancelling_terms_dropped(self):
        expr = sigma_x(0) - sigma_x(0)
        op = compile_expression(expr, n_sites=1)
        assert op.n_off_diag_primitives == 0

    def test_max_entries_per_row(self):
        op = compile_expression(heisenberg_chain(10), n_sites=10)
        # one ladder primitive per direction per bond + diagonal
        assert op.max_entries_per_row == 2 * 10 + 1


class TestProperties:
    def test_heisenberg_conserves_magnetization(self):
        op = compile_expression(heisenberg_chain(8))
        assert op.conserves_magnetization

    def test_tfim_does_not_conserve(self):
        op = compile_expression(transverse_field_ising(6))
        assert not op.conserves_magnetization

    def test_diagonal_operator_conserves(self):
        op = compile_expression(spin_z(0) * spin_z(1), n_sites=2)
        assert op.conserves_magnetization

    def test_is_real(self):
        assert compile_expression(heisenberg_chain(6)).is_real
        assert not compile_expression(sigma_y(0), n_sites=1).is_real
        assert compile_expression(sigma_y(0) * sigma_y(1), n_sites=2).is_real


class TestKernels:
    def test_diagonal_values(self):
        op = compile_expression(sigma_z(0), n_sites=2)
        values = op.diagonal_values(np.array([0b00, 0b01, 0b10, 0b11], dtype=np.uint64))
        assert values.tolist() == [-1.0, 1.0, -1.0, 1.0]

    def test_diagonal_dtype_real(self):
        op = compile_expression(sigma_z(0), n_sites=1)
        assert op.diagonal_values(np.array([0], dtype=np.uint64)).dtype == np.float64

    def test_apply_off_diag_simple_flip(self):
        op = compile_expression(sigma_x(0), n_sites=2)
        sources, betas, coeffs = op.apply_off_diag(
            np.array([0b00, 0b01], dtype=np.uint64)
        )
        # both states flip bit 0 with coefficient 1
        assert sorted(betas.tolist()) == [0b00, 0b01]
        assert np.allclose(coeffs, 1.0)
        assert sorted(sources.tolist()) == [0, 1]

    def test_apply_off_diag_selective(self):
        # s+ on site 0 only acts on states with site 0 down
        op = compile_expression(sigma_plus(0), n_sites=2)
        sources, betas, _ = op.apply_off_diag(
            np.array([0b00, 0b01, 0b10], dtype=np.uint64)
        )
        assert sources.tolist() == [0, 2]
        assert betas.tolist() == [0b01, 0b11]

    def test_apply_off_diag_empty(self):
        op = compile_expression(sigma_plus(0), n_sites=1)
        sources, betas, coeffs = op.apply_off_diag(
            np.array([0b1], dtype=np.uint64)
        )
        assert sources.size == betas.size == coeffs.size == 0

    def test_row_count_matches_matrix_nnz(self):
        from repro.basis import SpinBasis
        from repro.operators.matrix import expression_to_dense

        expr = heisenberg_chain(6)
        op = compile_expression(expr)
        basis = SpinBasis(6)
        dense = expression_to_dense(expr, 6)
        sources, betas, coeffs = op.apply_off_diag(basis.states)
        rebuilt = np.zeros_like(dense)
        rebuilt[betas.astype(np.int64), sources] = coeffs
        np.fill_diagonal(rebuilt, op.diagonal_values(basis.states))
        assert np.allclose(rebuilt, dense)


class TestValidation:
    def test_site_out_of_range(self):
        with pytest.raises(CompilationError):
            compile_expression(sigma_x(5), n_sites=3)

    def test_infers_n_sites(self):
        op = compile_expression(sigma_x(5))
        assert op.n_sites == 6

    def test_invalid_n_sites(self):
        with pytest.raises(CompilationError):
            compile_expression(sigma_x(0), n_sites=0)

    def test_repr_smoke(self):
        assert "CompiledOperator" in repr(compile_expression(sigma_x(0)))
