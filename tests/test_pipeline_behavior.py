"""Behavioral tests of the producer-consumer pipeline's timing semantics.

Correctness of the results is covered elsewhere; these tests check that
the *simulated execution* behaves like the system the paper describes:
backpressure through the RemoteBuffer flags, consumer-bound stalls, the
effect of the producer:consumer split, and work stealing.
"""

import dataclasses

import pytest

import repro
from repro.basis import SymmetricBasis
from repro.distributed import (
    DistributedOperator,
    DistributedVector,
    enumerate_states,
)
from repro.runtime import Cluster, laptop_machine
from repro.symmetry import chain_symmetries


def make_setup(machine):
    group = chain_symmetries(16, momentum=0, parity=None, inversion=None)
    cluster = Cluster(4, machine)
    template = SymmetricBasis(group, hamming_weight=8, build=False)
    dbasis, _ = enumerate_states(
        cluster, template, chunks_per_core=2, use_weight_shortcut=True
    )
    return dbasis


def run_pc(dbasis, **options):
    dop = DistributedOperator(
        repro.heisenberg_chain(16), dbasis, batch_size=16, **options
    )
    x = DistributedVector.full_random(dbasis, seed=0)
    dop.matvec(x)
    return dop.last_report


class TestBackpressure:
    def test_slow_consumers_stall_producers(self):
        # Make the consumer kernel artificially 100x slower than generation:
        # producers must block on full RemoteBuffers (stall_time > 0).
        machine = dataclasses.replace(
            laptop_machine(cores=8), t_search_accum=1e-4, t_generate=1e-8
        )
        report = run_pc(make_setup(machine), buffer_capacity=8)
        assert report.extras["stall_time"] > 0

    def test_fast_consumers_do_not_stall(self):
        machine = dataclasses.replace(
            laptop_machine(cores=8), t_search_accum=1e-10, t_generate=1e-5
        )
        report = run_pc(make_setup(machine))
        assert report.extras["stall_time"] == pytest.approx(0.0, abs=1e-12)

    def test_more_consumers_help_when_consumer_bound(self):
        machine = dataclasses.replace(
            laptop_machine(cores=8), t_search_accum=1e-5, t_generate=1e-8
        )
        dbasis = make_setup(machine)
        few = run_pc(dbasis, consumer_fraction=0.125)
        many = run_pc(dbasis, consumer_fraction=0.5)
        assert many.elapsed < few.elapsed

    def test_more_producers_help_when_generation_bound(self):
        machine = dataclasses.replace(
            laptop_machine(cores=8), t_search_accum=1e-9, t_generate=1e-5
        )
        dbasis = make_setup(machine)
        few_producers = run_pc(dbasis, consumer_fraction=0.5)
        many_producers = run_pc(dbasis, consumer_fraction=0.125)
        assert many_producers.elapsed < few_producers.elapsed


class TestWorkStealing:
    def test_stealing_helps_consumer_bound_pipeline(self):
        # With consumers as the bottleneck, finished producers joining the
        # consumer pool must shorten the simulated run.
        machine = dataclasses.replace(
            laptop_machine(cores=8), t_search_accum=3e-5, t_generate=1e-7
        )
        dbasis = make_setup(machine)
        plain = run_pc(dbasis, consumer_fraction=0.25)
        stealing = run_pc(dbasis, consumer_fraction=0.25, work_stealing=True)
        assert stealing.elapsed < plain.elapsed

    def test_stealing_never_much_worse(self):
        machine = laptop_machine(cores=8)
        dbasis = make_setup(machine)
        plain = run_pc(dbasis)
        stealing = run_pc(dbasis, work_stealing=True)
        assert stealing.elapsed <= plain.elapsed * 1.05


class TestLedgerAccounting:
    def test_phase_ledger_populated(self):
        machine = laptop_machine(cores=8)
        report = run_pc(make_setup(machine))
        assert report.ledger.total("generate") > 0
        assert report.ledger.total("search+accum") > 0

    def test_generate_busy_tracks_kernel_rate(self):
        # Doubling t_generate must double the generate busy time (the
        # partition/hash shares are zeroed so only generation is measured).
        base_machine = dataclasses.replace(
            laptop_machine(cores=8), t_partition=0.0, t_hash=0.0
        )
        slow_machine = dataclasses.replace(
            base_machine, t_generate=base_machine.t_generate * 2
        )
        base = run_pc(make_setup(base_machine))
        slow = run_pc(make_setup(slow_machine))
        assert slow.ledger.total("generate") == pytest.approx(
            2 * base.ledger.total("generate"), rel=1e-6
        )

    def test_message_sizes_respect_buffer_capacity(self):
        machine = laptop_machine(cores=8)
        dbasis = make_setup(machine)
        capped = run_pc(dbasis, buffer_capacity=4)
        from repro.distributed.matvec_common import ELEMENT_BYTES

        assert capped.mean_message_bytes <= 4 * ELEMENT_BYTES

    def test_elapsed_at_least_critical_path(self):
        # elapsed can never undercut the busiest single consumer core.
        machine = laptop_machine(cores=8)
        report = run_pc(make_setup(machine))
        n_consumers = report.extras["consumers"]
        busiest = report.ledger.max_over_locales("search+accum")
        assert report.elapsed >= busiest / max(n_consumers, 1) - 1e-12
