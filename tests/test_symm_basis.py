"""Tests for the symmetry-adapted basis, validated against an explicit
group-projector construction."""

import numpy as np
import pytest

from repro.basis import SpinBasis, SymmetricBasis
from repro.errors import BasisError, InvalidSectorError
from repro.symmetry import chain_symmetries, sector_dimension


def projector_matrix(group, u1_basis):
    """The explicit sector projector in a U(1) subspace."""
    dim = u1_basis.dim
    p = np.zeros((dim, dim), dtype=complex)
    for i in range(len(group)):
        permuted = group.apply_element(i, u1_basis.states)
        rows = u1_basis.index(permuted)
        u = np.zeros((dim, dim), dtype=complex)
        u[rows, np.arange(dim)] = 1.0
        p += np.conj(group.characters[i]) * u
    return p / len(group)


SECTORS = [
    (0, 0, 0),
    (0, 1, 0),
    (0, 0, 1),
    (0, 1, 1),
    (0, None, None),
    (1, None, None),
    (2, None, None),
    (3, None, None),
]


class TestDimensions:
    @pytest.mark.parametrize("momentum,parity,inversion", SECTORS)
    def test_dim_matches_projector_rank(self, momentum, parity, inversion):
        n, w = 8, 4
        group = chain_symmetries(n, momentum, parity, inversion)
        basis = SymmetricBasis(group, hamming_weight=w)
        u1 = SpinBasis(n, hamming_weight=w)
        p = projector_matrix(group, u1)
        rank = int(np.sum(np.linalg.eigvalsh(p) > 0.5))
        assert basis.dim == rank

    @pytest.mark.parametrize("momentum,parity,inversion", SECTORS)
    def test_dim_matches_burnside(self, momentum, parity, inversion):
        n, w = 10, 5
        group = chain_symmetries(n, momentum, parity, inversion)
        basis = SymmetricBasis(group, hamming_weight=w)
        assert basis.dim == sector_dimension(group, w)

    def test_full_space_no_weight(self):
        group = chain_symmetries(6, momentum=0, parity=0, inversion=0)
        basis = SymmetricBasis(group)
        assert basis.dim == sector_dimension(group, None)


class TestRepresentatives:
    @pytest.fixture
    def basis(self):
        group = chain_symmetries(10, momentum=0, parity=0, inversion=0)
        return SymmetricBasis(group, hamming_weight=5)

    def test_states_sorted(self, basis):
        assert np.all(np.diff(basis.states.astype(np.int64)) > 0)

    def test_states_are_orbit_minima(self, basis):
        rep, _, _ = basis.group.state_info(basis.states)
        assert np.array_equal(rep, basis.states)

    def test_index_roundtrip(self, basis):
        assert np.array_equal(
            basis.index(basis.states), np.arange(basis.dim, dtype=np.int64)
        )

    def test_check_agrees_with_membership(self, basis):
        candidates = np.arange(1 << 10, dtype=np.uint64)
        mask = basis.check(candidates)
        assert np.array_equal(candidates[mask], basis.states)

    def test_stabilizer_sums_positive_integers(self, basis):
        stab = basis.stabilizer_sums
        assert np.all(stab > 0.5)
        assert np.allclose(stab, np.round(stab))

    def test_norms_formula(self, basis):
        assert np.allclose(
            basis.norms, np.sqrt(basis.stabilizer_sums / len(basis.group))
        )

    def test_source_scale(self, basis):
        assert np.allclose(
            basis.source_scale, 1.0 / np.sqrt(basis.stabilizer_sums)
        )


class TestProjection:
    def test_project_diagonal_factor_is_one(self):
        group = chain_symmetries(8, momentum=0, parity=0, inversion=0)
        basis = SymmetricBasis(group, hamming_weight=4)
        members, factors, valid = basis.project(basis.states)
        assert np.array_equal(members, basis.states)
        assert np.all(valid)
        # factor * source_scale == 1 for representatives mapped to themselves
        assert np.allclose(factors * basis.source_scale, 1.0)

    def test_project_invalid_states_flagged(self):
        group = chain_symmetries(4, momentum=1, parity=None, inversion=None)
        basis = SymmetricBasis(group, hamming_weight=2)
        # The Neel orbit {0101, 1010} has stabilizer {e, t^2} with
        # chi(t^2) = -1 at k=1, so its character sum vanishes.
        _, _, valid = basis.project(np.array([0b0101], dtype=np.uint64))
        assert not valid[0]

    def test_project_real_sector_returns_real(self):
        group = chain_symmetries(8, momentum=0, parity=0, inversion=0)
        basis = SymmetricBasis(group, hamming_weight=4)
        _, factors, _ = basis.project(basis.states)
        assert factors.dtype == np.float64

    def test_project_complex_sector_returns_complex(self):
        group = chain_symmetries(8, momentum=1, parity=None, inversion=None)
        basis = SymmetricBasis(group, hamming_weight=4)
        _, factors, _ = basis.project(basis.states)
        assert factors.dtype == np.complex128


class TestConstruction:
    def test_unbuilt_basis_raises_on_access(self):
        group = chain_symmetries(8, momentum=0, parity=0, inversion=0)
        basis = SymmetricBasis(group, hamming_weight=4, build=False)
        with pytest.raises(BasisError):
            _ = basis.dim
        with pytest.raises(BasisError):
            basis.index(np.array([0], dtype=np.uint64))

    def test_unbuilt_basis_can_check_and_project(self):
        group = chain_symmetries(8, momentum=0, parity=0, inversion=0)
        basis = SymmetricBasis(group, hamming_weight=4, build=False)
        assert basis.check(np.array([0b00001111], dtype=np.uint64)).shape == (1,)
        basis.project(np.array([0b00001111], dtype=np.uint64))

    def test_from_representatives(self):
        group = chain_symmetries(8, momentum=0, parity=0, inversion=0)
        reference = SymmetricBasis(group, hamming_weight=4)
        rebuilt = SymmetricBasis.from_representatives(
            group, reference.states, hamming_weight=4
        )
        assert np.array_equal(rebuilt.states, reference.states)
        assert np.allclose(rebuilt.norms, reference.norms)

    def test_from_representatives_rejects_outsiders(self):
        group = chain_symmetries(4, momentum=1, parity=None, inversion=None)
        with pytest.raises(BasisError):
            SymmetricBasis.from_representatives(
                group, np.array([0b0101], dtype=np.uint64), hamming_weight=2
            )

    def test_inversion_requires_half_filling(self):
        group = chain_symmetries(8, momentum=0, parity=0, inversion=0)
        with pytest.raises(InvalidSectorError):
            SymmetricBasis(group, hamming_weight=3)

    def test_build_idempotent(self):
        group = chain_symmetries(8, momentum=0, parity=0, inversion=0)
        basis = SymmetricBasis(group, hamming_weight=4)
        states = basis.states
        basis.build()
        assert basis.states is states
