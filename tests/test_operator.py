"""Tests for the serial Operator: matvec vs dense ground truth."""

import numpy as np
import pytest
import scipy.sparse.linalg as spla

import repro
from repro.basis import SpinBasis, SymmetricBasis
from repro.errors import CompilationError
from repro.operators.matrix import expression_to_dense
from repro.symmetry import chain_symmetries


def random_vector(dim, dtype, rng):
    x = rng.standard_normal(dim)
    if np.dtype(dtype).kind == "c":
        x = x + 1j * rng.standard_normal(dim)
    return x.astype(dtype)


class TestFullBasis:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda: repro.heisenberg_chain(6),
            lambda: repro.transverse_field_ising(6, coupling=1.3, field=0.7),
            lambda: repro.xxz_chain(6, jz=0.4, jxy=1.1),
            lambda: repro.j1j2_chain(6, j1=1.0, j2=0.4),
        ],
    )
    def test_dense_matches_kron(self, builder):
        expr = builder()
        basis = SpinBasis(6)
        op = repro.Operator(expr, basis)
        assert np.allclose(op.to_dense(), expression_to_dense(expr, 6))

    def test_matvec_matches_dense(self, rng):
        expr = repro.transverse_field_ising(8)
        op = repro.Operator(expr, SpinBasis(8))
        x = random_vector(op.dim, op.dtype, rng)
        assert np.allclose(op.matvec(x), op.to_dense() @ x)

    def test_sparse_matches_dense(self):
        expr = repro.heisenberg_chain(6)
        op = repro.Operator(expr, SpinBasis(6))
        assert np.allclose(op.to_sparse().toarray(), op.to_dense())

    def test_small_batch_size_equivalent(self, rng):
        expr = repro.heisenberg_chain(8)
        big = repro.Operator(expr, SpinBasis(8), batch_size=1 << 14)
        small = repro.Operator(expr, SpinBasis(8), batch_size=7)
        x = rng.standard_normal(big.dim)
        assert np.allclose(big.matvec(x), small.matvec(x))


class TestU1Basis:
    def test_matvec_matches_restricted_dense(self, rng):
        n, w = 10, 5
        expr = repro.heisenberg_chain(n)
        basis = SpinBasis(n, hamming_weight=w)
        op = repro.Operator(expr, basis)
        full = expression_to_dense(expr, n)
        idx = basis.states.astype(np.int64)
        restricted = full[np.ix_(idx, idx)].real
        x = rng.standard_normal(basis.dim)
        assert np.allclose(op.matvec(x), restricted @ x)

    def test_non_conserving_operator_rejected(self):
        with pytest.raises(CompilationError):
            repro.Operator(
                repro.transverse_field_ising(6), SpinBasis(6, hamming_weight=3)
            )


class TestSymmetricBasis:
    @pytest.mark.parametrize(
        "momentum,parity,inversion",
        [(0, 0, 0), (0, 1, 1), (2, None, None), (1, None, None), (5, None, None)],
    )
    def test_spectrum_contained_in_full(self, momentum, parity, inversion):
        n, w = 10, 5
        group = chain_symmetries(n, momentum, parity, inversion)
        basis = SymmetricBasis(group, hamming_weight=w)
        if basis.dim == 0:
            pytest.skip("empty sector")
        op = repro.Operator(repro.heisenberg_chain(n), basis)
        hs = op.to_dense()
        assert np.allclose(hs, hs.conj().T)  # Hermitian
        sector = np.sort(np.linalg.eigvalsh(hs))
        full_basis = SpinBasis(n, hamming_weight=w)
        full = np.sort(
            np.linalg.eigvalsh(
                repro.Operator(repro.heisenberg_chain(n), full_basis).to_dense()
            )
        )
        # every sector eigenvalue appears in the full spectrum
        for e in sector:
            assert np.min(np.abs(full - e)) < 1e-8

    def test_sector_spectra_partition_full_spectrum(self):
        n, w = 8, 4
        expr = repro.heisenberg_chain(n)
        full = np.sort(
            np.linalg.eigvalsh(
                repro.Operator(expr, SpinBasis(n, hamming_weight=w)).to_dense()
            )
        )
        collected = []
        for k in range(n):
            group = chain_symmetries(n, momentum=k, parity=None, inversion=None)
            basis = SymmetricBasis(group, hamming_weight=w)
            if basis.dim:
                op = repro.Operator(expr, basis)
                collected.append(np.linalg.eigvalsh(op.to_dense()))
        merged = np.sort(np.concatenate(collected))
        assert merged.size == full.size
        assert np.allclose(merged, full, atol=1e-8)

    def test_matvec_matches_dense(self, rng, chain12_operator):
        op = chain12_operator
        x = rng.standard_normal(op.dim)
        assert np.allclose(op.matvec(x), op.to_dense() @ x)

    def test_complex_sector_matvec(self, rng):
        group = chain_symmetries(10, momentum=3, parity=None, inversion=None)
        basis = SymmetricBasis(group, hamming_weight=5)
        op = repro.Operator(repro.heisenberg_chain(10), basis)
        assert op.dtype == np.complex128
        x = random_vector(op.dim, np.complex128, rng)
        assert np.allclose(op.matvec(x), op.to_dense() @ x)

    def test_diagonal_cached_and_correct(self, chain12_operator):
        diag1 = chain12_operator.diagonal()
        diag2 = chain12_operator.diagonal()
        assert diag1 is diag2
        assert np.allclose(diag1, np.diag(chain12_operator.to_dense()))


class TestInterfaces:
    def test_matmul(self, rng, chain12_operator):
        x = rng.standard_normal(chain12_operator.dim)
        assert np.allclose(chain12_operator @ x, chain12_operator.matvec(x))

    def test_expectation_of_eigenvector(self, chain12_operator):
        h = chain12_operator.to_dense()
        evals, evecs = np.linalg.eigh(h)
        val = chain12_operator.expectation(evecs[:, 0])
        assert val == pytest.approx(evals[0])

    def test_linear_operator_eigsh(self, chain12_operator):
        linop = chain12_operator.as_linear_operator()
        ref = np.linalg.eigvalsh(chain12_operator.to_dense())[0]
        got = spla.eigsh(linop, k=1, which="SA")[0][0]
        assert got == pytest.approx(ref, abs=1e-8)

    def test_wrong_shape_rejected(self, chain12_operator):
        with pytest.raises(ValueError):
            chain12_operator.matvec(np.zeros(3))

    def test_shape_and_dtype(self, chain12_operator):
        assert chain12_operator.shape == (chain12_operator.dim,) * 2
        assert chain12_operator.dtype == np.float64
