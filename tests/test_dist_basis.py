"""Tests for hash-distributed bases and the distributed enumeration."""

import numpy as np
import pytest

import repro
from repro.basis import SpinBasis, SymmetricBasis
from repro.distributed import DistributedBasis, enumerate_states, locale_of
from repro.errors import BasisError, DistributionError
from repro.runtime import Cluster, laptop_machine
from repro.symmetry import chain_symmetries


def make_cluster(n, cores=4):
    return Cluster(n, laptop_machine(cores=cores))


SECTORS = [
    dict(momentum=0, parity=0, inversion=0),
    dict(momentum=0, parity=1, inversion=None),
    dict(momentum=3, parity=None, inversion=None),
]


class TestEnumeration:
    @pytest.mark.parametrize("n_locales", [1, 2, 4])
    @pytest.mark.parametrize("sector", SECTORS)
    def test_matches_serial_build(self, n_locales, sector):
        n, w = 12, 6
        group = chain_symmetries(n, **sector)
        serial = SymmetricBasis(group, hamming_weight=w)
        cluster = make_cluster(n_locales)
        template = SymmetricBasis(group, hamming_weight=w, build=False)
        dbasis, report = enumerate_states(cluster, template, chunks_per_core=3)
        assert dbasis.dim == serial.dim
        assert np.array_equal(dbasis.global_states(), serial.states)
        assert report.elapsed > 0

    def test_u1_basis(self):
        n, w = 12, 4
        serial = SpinBasis(n, hamming_weight=w)
        cluster = make_cluster(3)
        dbasis, _ = enumerate_states(cluster, SpinBasis(n, hamming_weight=w))
        assert dbasis.dim == serial.dim
        assert np.array_equal(dbasis.global_states(), serial.states)

    def test_full_basis(self):
        n = 10
        cluster = make_cluster(3)
        dbasis, _ = enumerate_states(cluster, SpinBasis(n))
        assert dbasis.dim == 1 << n

    def test_weight_shortcut_equivalent(self):
        n, w = 14, 7
        group = chain_symmetries(n, momentum=0, parity=0, inversion=0)
        cluster = make_cluster(2)
        template = SymmetricBasis(group, hamming_weight=w, build=False)
        slow, _ = enumerate_states(cluster, template, chunks_per_core=2)
        fast, _ = enumerate_states(
            cluster, template, chunks_per_core=2, use_weight_shortcut=True
        )
        for a, b in zip(slow.parts, fast.parts):
            assert np.array_equal(a, b)

    def test_parts_hash_correctly(self):
        cluster = make_cluster(4)
        dbasis, _ = enumerate_states(cluster, SpinBasis(10, hamming_weight=5))
        for locale, part in enumerate(dbasis.parts):
            assert np.all(locale_of(part, 4) == locale)

    def test_parts_sorted(self):
        cluster = make_cluster(4)
        dbasis, _ = enumerate_states(cluster, SpinBasis(12, hamming_weight=6))
        for part in dbasis.parts:
            assert np.all(np.diff(part.astype(np.int64)) > 0)

    def test_report_extras(self):
        cluster = make_cluster(2)
        dbasis, report = enumerate_states(cluster, SpinBasis(10, hamming_weight=5))
        assert "load_imbalance" in report.extras
        assert report.extras["load_imbalance"] >= 1.0
        assert "mean_put_bytes" in report.extras

    def test_chunks_per_core_does_not_change_result(self):
        n, w = 12, 6
        cluster = make_cluster(3)
        results = []
        for cpc in [1, 2, 10]:
            dbasis, _ = enumerate_states(
                cluster, SpinBasis(n, hamming_weight=w), chunks_per_core=cpc
            )
            results.append(dbasis.global_states())
        assert np.array_equal(results[0], results[1])
        assert np.array_equal(results[1], results[2])


class TestDistributedBasis:
    @pytest.fixture
    def dbasis(self):
        group = chain_symmetries(12, momentum=0, parity=0, inversion=0)
        cluster = make_cluster(3)
        template = SymmetricBasis(group, hamming_weight=6, build=False)
        return DistributedBasis.from_template(cluster, template, chunks_per_core=3)

    def test_index_local_roundtrip(self, dbasis):
        for locale, part in enumerate(dbasis.parts):
            idx = dbasis.index_local(locale, part)
            assert np.array_equal(idx, np.arange(part.size))

    def test_index_local_missing_raises(self, dbasis):
        # find a state not on locale 0
        foreign = dbasis.parts[1][:1]
        with pytest.raises(BasisError):
            dbasis.index_local(0, foreign)

    def test_scales_match_serial_source_scale(self, dbasis):
        group = dbasis.template.group
        serial = SymmetricBasis(group, hamming_weight=6)
        for part, scale in zip(dbasis.parts, dbasis.scales):
            idx = serial.index(part)
            assert np.allclose(scale, serial.source_scale[idx])

    def test_plain_basis_has_no_scales(self):
        cluster = make_cluster(2)
        dbasis, _ = enumerate_states(cluster, SpinBasis(10, hamming_weight=5))
        assert dbasis.scales is None

    def test_counts_and_dim(self, dbasis):
        assert dbasis.counts.sum() == dbasis.dim
        assert dbasis.load_imbalance >= 1.0

    def test_rejects_misplaced_states(self):
        cluster = make_cluster(2)
        template = SpinBasis(8, hamming_weight=4)
        states = template.states
        # put everything on locale 0 regardless of hash
        with pytest.raises(DistributionError):
            DistributedBasis(
                cluster, template, [states, np.empty(0, dtype=np.uint64)]
            )

    def test_rejects_wrong_part_count(self):
        cluster = make_cluster(2)
        with pytest.raises(DistributionError):
            DistributedBasis(cluster, SpinBasis(4), [np.empty(0, dtype=np.uint64)])

    def test_properties(self, dbasis):
        assert dbasis.n_sites == 12
        assert dbasis.is_real
        assert dbasis.scalar_dtype == np.float64
        assert dbasis.n_locales == 3
