"""Tests for the telemetry subsystem.

Unit tests for the trace recorder, the metrics registry, and the ambient
context, plus integrity tests on a traced producer-consumer matvec run:
per-track timestamps are monotone and non-overlapping, every span closes,
the producer stall spans agree with the cost ledger, and the byte counters
agree with the simulation report.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

import repro
from repro import telemetry
from repro.basis import SymmetricBasis
from repro.distributed import (
    DistributedOperator,
    DistributedVector,
    enumerate_states,
)
from repro.runtime import Cluster, laptop_machine
from repro.runtime.events import Pop, Simulator, Timeout, WaitFlag
from repro.symmetry import chain_symmetries
from repro.telemetry import (
    MetricsRegistry,
    MetricsSnapshot,
    NullMetricsRegistry,
    NullTraceRecorder,
    Telemetry,
    TraceRecorder,
)

US = 1e6  # trace timestamps are microseconds


class TestTraceRecorder:
    def test_complete_converts_to_microseconds(self):
        trace = TraceRecorder()
        trace.complete(("locale0", "producer0"), "generate", 1.5, 0.25)
        (event,) = trace.events
        assert event["ph"] == "X"
        assert event["name"] == "generate"
        assert event["ts"] == pytest.approx(1.5 * US)
        assert event["dur"] == pytest.approx(0.25 * US)

    def test_advance_offsets_later_events(self):
        trace = TraceRecorder()
        trace.complete(("a", "b"), "first", 0.0, 1.0)
        trace.advance(10.0)
        trace.complete(("a", "b"), "second", 0.0, 1.0)
        assert trace.events[1]["ts"] == pytest.approx(10.0 * US)

    def test_complete_abs_ignores_offset(self):
        trace = TraceRecorder()
        trace.advance(5.0)
        trace.complete_abs(("a", "b"), "span", 7.0, 1.0)
        assert trace.events[0]["ts"] == pytest.approx(7.0 * US)

    def test_begin_end_nesting_is_lifo(self):
        trace = TraceRecorder()
        trace.begin(("a", "b"), "outer", 0.0)
        trace.begin(("a", "b"), "inner", 1.0)
        trace.end(("a", "b"), 2.0)
        trace.end(("a", "b"), 3.0)
        names = [e["name"] for e in trace.events]
        assert names == ["inner", "outer"]
        assert trace.events[0]["dur"] == pytest.approx(1.0 * US)
        assert trace.events[1]["dur"] == pytest.approx(3.0 * US)
        assert trace.open_spans() == []

    def test_end_without_begin_raises(self):
        with pytest.raises(ValueError, match="no open span"):
            TraceRecorder().end(("a", "b"), 1.0)

    def test_unclosed_span_fails_export(self):
        trace = TraceRecorder()
        trace.begin(("a", "b"), "leaked", 0.0)
        assert trace.open_spans() == [(("a", "b"), "leaked")]
        with pytest.raises(ValueError, match="unclosed"):
            trace.to_chrome()

    def test_tracks_map_to_pid_tid_metadata(self):
        trace = TraceRecorder()
        trace.complete(("locale0", "producer0"), "x", 0.0, 1.0)
        trace.complete(("locale0", "consumer0"), "x", 0.0, 1.0)
        trace.complete(("locale1", "producer0"), "x", 0.0, 1.0)
        chrome = trace.to_chrome()
        meta = [e for e in chrome["traceEvents"] if e["ph"] == "M"]
        processes = {
            e["pid"]: e["args"]["name"]
            for e in meta
            if e["name"] == "process_name"
        }
        threads = {
            (e["pid"], e["tid"]): e["args"]["name"]
            for e in meta
            if e["name"] == "thread_name"
        }
        assert sorted(processes.values()) == ["locale0", "locale1"]
        assert sorted(threads.values()) == [
            "consumer0",
            "producer0",
            "producer0",
        ]
        # Same process label -> same pid; distinct threads -> distinct tids.
        pid0 = next(p for p, n in processes.items() if n == "locale0")
        tids = [t for (p, t) in threads if p == pid0]
        assert len(tids) == len(set(tids)) == 2

    def test_counter_and_instant_events(self):
        trace = TraceRecorder()
        trace.counter(("queues", "ready0"), "ready0", 2.0, 5)
        trace.instant(("locale0", "producer0"), "done", 3.0)
        counter, instant = trace.events
        assert counter["ph"] == "C"
        assert counter["args"] == {"ready0": 5}
        assert instant["ph"] == "i"
        assert instant["ts"] == pytest.approx(3.0 * US)

    def test_json_round_trips(self):
        trace = TraceRecorder()
        trace.complete(("a", "b"), "span", 0.0, 1.0, args={"size": 4})
        data = json.loads(trace.to_json())
        assert data["displayTimeUnit"] == "ms"
        spans = [e for e in data["traceEvents"] if e["ph"] == "X"]
        assert spans[0]["args"] == {"size": 4}

    def test_null_recorder_records_nothing(self):
        trace = NullTraceRecorder()
        assert trace.enabled is False
        trace.complete(("a", "b"), "x", 0.0, 1.0)
        trace.begin(("a", "b"), "x", 0.0)
        trace.instant(("a", "b"), "x", 0.0)
        trace.counter(("a", "b"), "x", 0.0, 1)
        trace.advance(5.0)
        assert trace.events == []
        assert trace.offset == 0.0
        assert trace.open_spans() == []


class TestMetricsRegistry:
    def test_counters_interned_by_name_and_labels(self):
        reg = MetricsRegistry()
        a = reg.counter("bytes", src=0, dst=1)
        b = reg.counter("bytes", dst=1, src=0)  # label order normalized
        c = reg.counter("bytes", src=0, dst=2)
        assert a is b
        assert a is not c

    def test_counter_total_sums_label_family(self):
        reg = MetricsRegistry()
        reg.counter("bytes", src=0, dst=1).inc(100)
        reg.counter("bytes", src=1, dst=0).inc(50)
        reg.counter("messages", src=0, dst=1).inc()
        assert reg.counter_total("bytes") == pytest.approx(150)
        assert reg.counter_total("messages") == pytest.approx(1)
        assert reg.counter_total("missing") == 0.0

    def test_histogram_statistics(self):
        reg = MetricsRegistry()
        h = reg.histogram("sizes")
        for v in (4.0, 1.0, 7.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == pytest.approx(12.0)
        assert h.min == 1.0
        assert h.max == 7.0
        assert h.mean == pytest.approx(4.0)

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        g = reg.gauge("imbalance")
        g.set(1.5)
        g.set(1.2)
        assert g.value == 1.2

    def test_snapshot_is_frozen(self):
        reg = MetricsRegistry()
        reg.counter("n").inc(1)
        snap = reg.snapshot()
        reg.counter("n").inc(41)
        assert snap.counter_total("n") == pytest.approx(1)
        assert reg.counter_total("n") == pytest.approx(42)

    def test_snapshot_table_renders_all_kinds(self):
        reg = MetricsRegistry()
        reg.counter("matvec.bytes", src=0, dst=1).inc(512)
        reg.gauge("imbalance").set(1.25)
        reg.histogram("chunk").observe(8.0)
        table = reg.snapshot().table()
        assert "matvec.bytes{dst=1,src=0}" in table
        assert "imbalance" in table
        assert "chunk" in table

    def test_empty_snapshot_table(self):
        assert MetricsRegistry().snapshot().table() == "(no metrics recorded)"

    def test_snapshot_json_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("bytes", src=0, dst=1).inc(100)
        reg.gauge("residual").set(1e-9)
        reg.histogram("stall", locale=2).observe(0.5)
        snap = reg.snapshot()
        restored = MetricsSnapshot.from_json(
            json.loads(json.dumps(snap.to_json()))
        )
        assert restored == snap

    def test_null_registry_hands_out_shared_noops(self):
        reg = NullMetricsRegistry()
        assert reg.enabled is False
        c = reg.counter("bytes", src=0, dst=1)
        assert c is reg.counter("other")
        c.inc(100)
        reg.gauge("g").set(5.0)
        reg.histogram("h").observe(1.0)
        assert c.value == 0.0
        assert reg.gauge("g").value == 0.0
        assert reg.histogram("h").count == 0
        snap = reg.snapshot()
        assert snap.counters == {} and snap.gauges == {}


class TestTelemetryContext:
    def test_default_is_noop(self):
        tele = telemetry.current()
        assert tele.trace.enabled is False
        assert tele.metrics.enabled is False

    def test_use_installs_and_restores(self):
        live = Telemetry.enabled()
        assert telemetry.current() is telemetry.NULL_TELEMETRY
        with telemetry.use(live):
            assert telemetry.current() is live
        assert telemetry.current() is telemetry.NULL_TELEMETRY

    def test_install_none_restores_null(self):
        live = Telemetry.enabled()
        previous = telemetry.install(live)
        try:
            assert telemetry.current() is live
        finally:
            telemetry.install(None)
        assert previous is telemetry.NULL_TELEMETRY
        assert telemetry.current() is telemetry.NULL_TELEMETRY

    def test_enabled_halves_individually(self):
        tele = Telemetry.enabled(trace=False)
        assert tele.trace.enabled is False
        assert tele.metrics.enabled is True


class TestSimulatorTracing:
    def test_idle_span_and_queue_counters(self):
        trace = TraceRecorder()
        sim = Simulator(trace=trace)
        q = sim.queue(name="ready")

        def producer():
            q.push("a")
            yield Timeout(5e-6, "work")
            q.push("b")

        def consumer():
            yield Timeout(2e-6)
            assert (yield Pop(q)) == "a"  # from the backlog
            assert (yield Pop(q)) == "b"  # blocks until the second push

        sim.spawn(producer(), name="prod", track=("locale0", "producer0"))
        sim.spawn(consumer(), name="cons", track=("locale0", "consumer0"))
        sim.run()
        spans = {e["name"]: e for e in trace.events if e["ph"] == "X"}
        assert spans["work"]["dur"] == pytest.approx(5.0)
        # The consumer blocked from the empty pop at t=2us until t=5us.
        assert spans["idle"]["ts"] == pytest.approx(2.0)
        assert spans["idle"]["dur"] == pytest.approx(3.0)
        # Depth samples at both backlog transitions: push -> 1, pop -> 0.
        counters = [e for e in trace.events if e["ph"] == "C"]
        assert [e["args"]["ready"] for e in counters] == [1, 0]

    def test_flag_wait_emits_stall_span(self):
        trace = TraceRecorder()
        sim = Simulator(trace=trace)
        flag = sim.flag(False)

        def setter():
            yield Timeout(3e-6)
            flag.set(True)

        def waiter():
            yield WaitFlag(flag, True)

        sim.spawn(setter(), name="set")
        sim.spawn(waiter(), name="wait", track=("locale0", "producer0"))
        sim.run()
        (stall,) = [e for e in trace.events if e["name"] == "stall"]
        assert stall["dur"] == pytest.approx(3.0)

    def test_untraced_simulator_has_no_overhead_state(self):
        sim = Simulator()
        flag = sim.flag(False)

        def setter():
            yield Timeout(1e-6)
            flag.set(True)

        def waiter():
            yield WaitFlag(flag, True)

        sim.spawn(setter())
        sim.spawn(waiter())
        assert sim.run() == pytest.approx(1e-6)


@pytest.fixture(scope="module")
def traced_matvec():
    """A producer-consumer matvec run against live telemetry, with a
    deliberately tight pipeline (tiny buffers, one consumer per locale) so
    producers actually stall on full buffers."""
    group = chain_symmetries(12, momentum=0, parity=0, inversion=0)
    serial = SymmetricBasis(group, hamming_weight=6)
    template = SymmetricBasis(group, hamming_weight=6, build=False)
    cluster = Cluster(3, laptop_machine(cores=4))
    dbasis, _ = enumerate_states(cluster, template, chunks_per_core=3)
    dop = DistributedOperator(
        repro.heisenberg_chain(12),
        dbasis,
        method="pc",
        batch_size=32,
        buffer_capacity=16,
        producers_per_locale=4,
        consumers_per_locale=1,
    )
    tele = Telemetry.enabled()
    with telemetry.use(tele):
        x = DistributedVector.full_random(dbasis, seed=0)
        y = dop.matvec(x)
    serial_op = repro.Operator(repro.heisenberg_chain(12), serial)
    np.testing.assert_allclose(
        y.to_serial(serial), serial_op.matvec(x.to_serial(serial)), atol=1e-12
    )
    return tele, dop.last_report


def _track_names(chrome):
    """(pid, tid) -> (process_name, thread_name) from metadata events."""
    meta = [e for e in chrome["traceEvents"] if e["ph"] == "M"]
    processes = {
        e["pid"]: e["args"]["name"] for e in meta if e["name"] == "process_name"
    }
    return {
        (e["pid"], e["tid"]): (processes[e["pid"]], e["args"]["name"])
        for e in meta
        if e["name"] == "thread_name"
    }


class TestTraceIntegrity:
    def test_every_span_closes_and_trace_is_valid_json(self, traced_matvec):
        tele, _ = traced_matvec
        assert tele.trace.open_spans() == []
        chrome = json.loads(tele.trace.to_json())
        assert chrome["traceEvents"]
        assert {e["ph"] for e in chrome["traceEvents"]} >= {"X", "M"}

    def test_tracks_are_monotone_and_non_overlapping(self, traced_matvec):
        tele, _ = traced_matvec
        ends: dict = {}
        checked = 0
        for event in tele.trace.events:
            if event["ph"] != "X":
                continue
            key = (event["pid"], event["tid"])
            prev_end = ends.get(key, float("-inf"))
            assert event["ts"] + 1e-6 >= prev_end, (
                f"span {event['name']!r} on track {key} starts at "
                f"{event['ts']} before previous span ends at {prev_end}"
            )
            ends[key] = max(prev_end, event["ts"] + event["dur"])
            checked += 1
        assert checked > 50  # a real pipeline, not a trivial trace

    def test_producer_stalls_match_ledger(self, traced_matvec):
        tele, report = traced_matvec
        chrome = tele.trace.to_chrome()
        names = _track_names(chrome)
        stalled = np.zeros(3)
        for event in chrome["traceEvents"]:
            if event["ph"] != "X" or event["name"] != "stall":
                continue
            process, thread = names[(event["pid"], event["tid"])]
            if not thread.startswith("producer"):
                continue  # the closer task also waits on flags
            locale = int(process.removeprefix("locale"))
            stalled[locale] += event["dur"] / US
        expected = report.ledger.per_locale("stall")
        assert stalled.sum() > 0.0  # tiny buffers force real stalls
        np.testing.assert_allclose(stalled, expected, rtol=1e-9, atol=1e-15)
        assert report.extras["stall_time"] == pytest.approx(stalled.sum())

    def test_byte_counters_match_report(self, traced_matvec):
        _, report = traced_matvec
        assert report.metrics is not None
        assert report.metrics.counter_total("matvec.bytes") == pytest.approx(
            report.bytes_sent
        )
        assert report.metrics.counter_total(
            "matvec.messages"
        ) == pytest.approx(report.messages)

    def test_producer_and_consumer_work_overlaps(self, traced_matvec):
        """The point of the pipeline (Fig. 5): some generate span runs
        concurrently with some search+accum span."""
        tele, _ = traced_matvec
        generates = []
        searches = []
        for event in tele.trace.events:
            if event["ph"] != "X":
                continue
            if event["name"] == "generate":
                generates.append((event["ts"], event["ts"] + event["dur"]))
            elif event["name"] == "search+accum":
                searches.append((event["ts"], event["ts"] + event["dur"]))
        assert generates and searches
        assert any(
            g0 < s1 and s0 < g1
            for g0, g1 in generates
            for s0, s1 in searches
        )

    def test_metrics_snapshot_in_summary(self, traced_matvec):
        _, report = traced_matvec
        text = report.summary()
        assert "metrics:" in text
        assert "matvec.bytes" in text


class TestCommandLine:
    def test_trace_and_metrics_flags(self, tmp_path, capsys):
        from repro.config import main

        input_path = (
            Path(__file__).parent.parent
            / "examples"
            / "inputs"
            / "heisenberg_14_distributed.json"
        )
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        main(
            [
                str(input_path),
                "--trace",
                str(trace_path),
                "--metrics",
                str(metrics_path),
                "--seed",
                "1",
            ]
        )
        result = json.loads(capsys.readouterr().out)
        assert result["converged"]

        chrome = json.loads(trace_path.read_text())
        assert chrome["traceEvents"]
        span_names = {
            e["name"] for e in chrome["traceEvents"] if e["ph"] == "X"
        }
        assert {"generate", "search+accum"} <= span_names

        snapshot = MetricsSnapshot.from_json(
            json.loads(metrics_path.read_text())
        )
        assert snapshot.counter_total("matvec.bytes") > 0
        assert snapshot.counter_total("lanczos.iterations") > 0

    def test_plain_run_without_telemetry_flags(self, tmp_path, capsys):
        from repro.config import main

        input_path = (
            Path(__file__).parent.parent
            / "examples"
            / "inputs"
            / "heisenberg_14_distributed.json"
        )
        main([str(input_path)])
        result = json.loads(capsys.readouterr().out)
        assert result["converged"]
        # No telemetry bundle leaked into the ambient context.
        assert telemetry.current() is telemetry.NULL_TELEMETRY
