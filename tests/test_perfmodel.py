"""Tests for the paper-scale analytic performance models.

These pin the quantitative anchors from the paper's Sec. 6 and
cross-validate the closed-form models against the event-driven
implementations at laptop scale.
"""

import pytest

import repro
from repro.basis import SymmetricBasis
from repro.distributed import (
    DistributedOperator,
    DistributedVector,
    enumerate_states,
)
from repro.perfmodel import (
    ChainWorkload,
    ConversionScalingModel,
    EnumerationScalingModel,
    MatvecScalingModel,
    SpinpackModel,
    paper_workload,
)
from repro.runtime import Cluster, laptop_machine, snellius_machine
from repro.symmetry import chain_symmetries


@pytest.fixture(scope="module")
def machine():
    return snellius_machine()


class TestWorkloads:
    def test_paper_dimensions(self):
        assert paper_workload(40).dimension == 861_725_794
        assert paper_workload(46).dimension == 44_748_176_653

    def test_non_table_size_computed(self):
        w = paper_workload(36)
        # consistency: dimension ~ C(36,18)/(4*36)
        from math import comb

        assert w.dimension == pytest.approx(comb(36, 18) / 144, rel=0.01)

    def test_total_elements(self):
        w = ChainWorkload(n_sites=40, dimension=100)
        assert w.total_elements == 100 * 20


class TestMatvecModelAnchors:
    """The paper's own numbers for the producer-consumer matvec."""

    def test_single_node_42_spins_is_about_500s(self, machine):
        model = MatvecScalingModel(machine, paper_workload(42))
        # Sec. 6.3: 424 s generate + 80 s search per core on one node.
        assert model.single_node_time() == pytest.approx(504, rel=0.05)

    def test_40_spins_on_4_nodes_at_least_40s(self, machine):
        # Sec. 6.1: "on 4 locales, a single matrix-vector product for a
        # 40-spin system will take at least 40 seconds".
        model = MatvecScalingModel(machine, paper_workload(40))
        assert model.pipeline_time(4) >= 40.0
        assert model.pipeline_time(4) < 80.0

    def test_42_spins_64_nodes_speedup_51x(self, machine):
        # Fig. 8a: "for 42 spins, the speedup we obtain when using 64 nodes
        # is around 51x".
        model = MatvecScalingModel(machine, paper_workload(42))
        assert model.speedup(64) == pytest.approx(51, rel=0.08)

    def test_work_stealing_improves_large_scale(self, machine):
        # Sec. 7: work stealing between producers and consumers is expected
        # to bring 64-node scaling closer to ideal.
        model = MatvecScalingModel(machine, paper_workload(42))
        plain = model.speedup(64)
        stealing = model.pipeline_time(1) / model.pipeline_time(
            64, work_stealing=True
        )
        assert stealing > plain
        assert stealing > 55

    def test_fig8b_44_spins_scaling(self, machine):
        # Fig. 8b: 47x from 4 to 256 nodes (we accept the right order).
        model = MatvecScalingModel(machine, paper_workload(44))
        speedup = model.pipeline_time(4) / model.pipeline_time(256)
        assert 40 < speedup < 60

    def test_fig8b_46_spins_scaling(self, machine):
        # Fig. 8b: 12x from 16 to 256 nodes.
        model = MatvecScalingModel(machine, paper_workload(46))
        speedup = model.pipeline_time(16) / model.pipeline_time(256)
        assert 10 < speedup < 16

    def test_speedup_monotone_in_nodes(self, machine):
        model = MatvecScalingModel(machine, paper_workload(42))
        speeds = [model.speedup(n) for n in [1, 2, 4, 8, 16, 32, 64]]
        assert all(b > a for a, b in zip(speeds, speeds[1:]))


class TestSpinpackModelAnchors:
    def test_2x_on_one_node(self, machine):
        # Fig. 9: "On one node, lattice-symmetries is 2x faster".
        ls = MatvecScalingModel(machine, paper_workload(42))
        sp = SpinpackModel(machine, paper_workload(42))
        assert sp.time(1) / ls.pipeline_time(1) == pytest.approx(2.0, rel=0.05)

    @pytest.mark.parametrize("n_sites", [40, 42])
    def test_7_8x_on_32_nodes(self, machine, n_sites):
        # Fig. 9: "On 32 nodes, lattice-symmetries outperforms SPINPACK by
        # 7-8x".  Accept a band around it.
        ls = MatvecScalingModel(machine, paper_workload(n_sites))
        sp = SpinpackModel(machine, paper_workload(n_sites))
        ratio = sp.time(32) / ls.pipeline_time(32)
        assert 6.0 < ratio < 11.0

    def test_gap_grows_with_node_count(self, machine):
        # "this factor increases as we increase the number of nodes"
        ls = MatvecScalingModel(machine, paper_workload(42))
        sp = SpinpackModel(machine, paper_workload(42))
        ratios = [sp.time(n) / ls.pipeline_time(n) for n in [4, 8, 16, 32]]
        assert all(b > a for a, b in zip(ratios, ratios[1:]))

    def test_spinpack_speedup_saturates(self, machine):
        sp = SpinpackModel(machine, paper_workload(42))
        assert sp.speedup(32) < 10  # far from ideal 32


class TestEnumerationModelAnchors:
    def test_put_sizes_match_paper(self, machine):
        # Sec. 6.2: ~2 KB puts for 40 spins at 32 nodes, ~8 KB for 42.
        e40 = EnumerationScalingModel(machine, paper_workload(40))
        e42 = EnumerationScalingModel(machine, paper_workload(42))
        assert e40.put_bytes(32) == pytest.approx(2048, rel=0.15)
        assert e42.put_bytes(32) == pytest.approx(8192, rel=0.15)

    def test_kept_per_chunk_matches_paper(self, machine):
        # Sec. 6.2: "each chunk contains around 8400" for 40 spins / 32 nodes.
        e40 = EnumerationScalingModel(machine, paper_workload(40))
        assert e40.kept_per_chunk(32) == pytest.approx(8400, rel=0.05)

    def test_40_spins_saturates_sooner_than_42(self, machine):
        # Fig. 7: the 40-spin curve saturates at 32 nodes; 42 keeps scaling.
        e40 = EnumerationScalingModel(machine, paper_workload(40))
        e42 = EnumerationScalingModel(machine, paper_workload(42))
        eff40 = e40.speedup(32) / 32
        eff42 = e42.speedup(32) / 32
        assert eff42 > eff40 + 0.15

    def test_nearly_perfect_up_to_16(self, machine):
        e42 = EnumerationScalingModel(machine, paper_workload(42))
        assert e42.speedup(16) > 0.85 * 16


class TestConversionModelAnchors:
    def test_under_a_second_beyond_4_locales(self, machine):
        # Sec. 6.1: "for more than 4 locales, the operations complete in
        # well under a second".
        for n_sites in (40, 42):
            model = ConversionScalingModel(machine, paper_workload(n_sites))
            for n in (8, 16, 32):
                assert model.time(n) < 1.0

    def test_time_decreases_with_locales(self, machine):
        model = ConversionScalingModel(machine, paper_workload(42))
        times = [model.time(n) for n in [2, 4, 8, 16, 32]]
        assert all(b < a for a, b in zip(times, times[1:]))


class TestCrossValidationAgainstSimulation:
    """The closed-form model and the event-driven simulation must agree on
    the machine they both describe (small scale, loose tolerance)."""

    def test_pc_matvec_model_vs_des(self):
        # Use a translation-only sector (dim ~800) with small batches so
        # the work spreads over all simulated producers; with one chunk per
        # locale the DES is quantized and the closed form cannot match.
        n, w = 16, 8
        group = chain_symmetries(n, momentum=0, parity=None, inversion=None)
        machine = laptop_machine(cores=8)
        cluster = Cluster(4, machine)
        template = SymmetricBasis(group, hamming_weight=w, build=False)
        dbasis, _ = enumerate_states(
            cluster, template, use_weight_shortcut=True
        )
        serial = SymmetricBasis(group, hamming_weight=w)
        batch = 16
        dop = DistributedOperator(
            repro.heisenberg_chain(n),
            dbasis,
            batch_size=batch,
            consumer_fraction=0.25,
        )
        x = DistributedVector.full_random(dbasis, seed=0)
        dop.matvec(x)
        des_time = dop.last_report.elapsed

        # measured average off-diagonals per row for this workload
        from repro.operators import compile_expression

        compiled = compile_expression(repro.heisenberg_chain(n), n)
        sources, _, _ = compiled.apply_off_diag(serial.states)
        per_row = sources.size / serial.dim
        model = MatvecScalingModel(
            machine,
            ChainWorkload(n_sites=n, dimension=serial.dim),
            batch_size=batch,
            consumer_fraction=0.25,
        )
        # rescale the model's n/2 off-diagonal estimate to the measured rate
        predicted = model.pipeline_time(4) * (per_row / (n / 2))
        assert predicted == pytest.approx(des_time, rel=0.6)

    def test_single_node_model_vs_shared_memory_implementation(self):
        n, w = 12, 6
        group = chain_symmetries(n, momentum=0, parity=0, inversion=0)
        machine = laptop_machine(cores=8)
        cluster = Cluster(1, machine)
        template = SymmetricBasis(group, hamming_weight=w, build=False)
        dbasis, _ = enumerate_states(cluster, template)
        serial = SymmetricBasis(group, hamming_weight=w)
        dop = DistributedOperator(repro.heisenberg_chain(n), dbasis)
        x = DistributedVector.full_random(dbasis, seed=0)
        dop.matvec(x)
        des_time = dop.last_report.elapsed

        from repro.operators import compile_expression

        compiled = compile_expression(repro.heisenberg_chain(n), n)
        sources, _, _ = compiled.apply_off_diag(serial.states)
        per_row = sources.size / serial.dim
        model = MatvecScalingModel(
            machine, ChainWorkload(n_sites=n, dimension=serial.dim)
        )
        predicted = model.single_node_time() * (per_row / (n / 2))
        assert predicted == pytest.approx(des_time, rel=0.3)
