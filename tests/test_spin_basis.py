"""Tests for the plain (full and U(1)) spin bases."""

import numpy as np
import pytest

from repro.basis import SpinBasis
from repro.bits import popcount
from repro.errors import BasisError


class TestFullBasis:
    def test_dim(self):
        assert SpinBasis(5).dim == 32

    def test_states_are_indices(self):
        basis = SpinBasis(4)
        assert np.array_equal(basis.states, np.arange(16, dtype=np.uint64))
        assert np.array_equal(
            basis.index(basis.states), np.arange(16, dtype=np.int64)
        )

    def test_check_in_range(self):
        basis = SpinBasis(4)
        mask = basis.check(np.array([0, 15, 16, 100], dtype=np.uint64))
        assert mask.tolist() == [True, True, False, False]

    def test_index_out_of_range(self):
        basis = SpinBasis(4)
        with pytest.raises(BasisError):
            basis.index(np.array([16], dtype=np.uint64))

    def test_project_is_identity(self, rng):
        basis = SpinBasis(6)
        raw = rng.integers(0, 64, size=50, dtype=np.uint64)
        members, factors, valid = basis.project(raw)
        assert np.array_equal(members, raw)
        assert np.all(factors == 1.0)
        assert np.all(valid)

    def test_source_scale_is_none(self):
        assert SpinBasis(4).source_scale is None

    def test_is_real(self):
        assert SpinBasis(4).is_real
        assert SpinBasis(4).scalar_dtype == np.float64

    def test_refuses_huge_materialization(self):
        basis = SpinBasis(40)
        assert basis.dim == 1 << 40
        with pytest.raises(BasisError):
            _ = basis.states


class TestU1Basis:
    def test_dim(self):
        assert SpinBasis(6, hamming_weight=3).dim == 20

    def test_states_sorted_with_correct_weight(self):
        basis = SpinBasis(10, hamming_weight=4)
        assert np.all(popcount(basis.states) == 4)
        assert np.all(np.diff(basis.states.astype(np.int64)) > 0)

    def test_index_roundtrip(self):
        basis = SpinBasis(10, hamming_weight=5)
        assert np.array_equal(
            basis.index(basis.states), np.arange(basis.dim, dtype=np.int64)
        )

    def test_check_filters_weight(self):
        basis = SpinBasis(6, hamming_weight=2)
        cand = np.array([0b000011, 0b000111, 0b100001, 0b111111], dtype=np.uint64)
        assert basis.check(cand).tolist() == [True, False, True, False]

    def test_extreme_weights(self):
        assert SpinBasis(8, hamming_weight=0).dim == 1
        assert SpinBasis(8, hamming_weight=8).dim == 1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SpinBasis(0)
        with pytest.raises(ValueError):
            SpinBasis(4, hamming_weight=5)
        with pytest.raises(ValueError):
            SpinBasis(64)
